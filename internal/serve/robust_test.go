package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
)

// writeJournal handcrafts a journal file under dir from raw NDJSON
// lines — the deterministic way to stage "a previous run crashed here"
// states without actually crashing a process.
func writeJournal(t *testing.T, dir string, lines ...string) {
	t.Helper()
	data := strings.Join(lines, "\n")
	if len(lines) > 0 && !strings.HasSuffix(data, "\n") {
		data += "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// acceptLine renders a well-formed scenario accept record for spec.
func acceptLine(t *testing.T, seq int64, spec scenario.Spec, reps int) string {
	t.Helper()
	compiled, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	key, err := scenario.Fingerprint(spec, reps)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := json.Marshal(compiled.Spec)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf(`{"seq":%d,"op":"accept","kind":"scenario","key":%q,"spec":%s,"reps":%d}`,
		seq, key, canon, reps)
}

// waitReplayed polls until the server has replayed (at least) n journal
// records and every replayed job reached a terminal state.
func waitReplayed(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		c, _ := s.Stats()
		if c.Replayed >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal replay never reached %d records (got %d)", n, c.Replayed)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, j := range s.Jobs() {
		waitDone(t, j)
	}
}

// TestJournalReplayRecoversJob is the crash-recovery core: an accept
// record without a terminal end — exactly what a SIGKILLed daemon
// leaves behind — is replayed on startup, runs to completion, and
// serves a result byte-identical to a direct submission of the same
// study. Afterwards the journal carries no live records: a second
// restart replays nothing.
func TestJournalReplayRecoversJob(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("journal-replay")
	writeJournal(t, dir, acceptLine(t, 1, spec, 3))

	s := mustNew(t, Config{JournalDir: dir})
	waitReplayed(t, s, 1)
	jobs := s.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("replay admitted %d jobs, want 1", len(jobs))
	}
	st := jobs[0].Status()
	if st.State != StateDone || !st.Replayed {
		t.Fatalf("replayed job status = %+v, want done and replayed", st)
	}
	got, _, ok := jobs[0].Result()
	if !ok {
		t.Fatal("replayed job has no result")
	}
	s.Close()

	// Reference: the same study submitted directly to a fresh server.
	ref := mustNew(t, Config{})
	defer ref.Close()
	j, _, _, err := ref.Submit(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	want, _, _ := j.Result()
	if !bytes.Equal(got, want) {
		t.Error("replayed result differs from a direct submission")
	}

	// The record was retired: nothing left to replay.
	jl, pending, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	jl.close()
	if len(pending) != 0 {
		t.Fatalf("journal still has %d live record(s) after recovery", len(pending))
	}
}

// TestJournalCorruptTailTruncated pins the crash-mid-append contract:
// everything up to the last well-formed record is trusted and replayed,
// the corrupt tail is dropped (not fatal), and the recovered file is
// rewritten clean.
func TestJournalCorruptTailTruncated(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("corrupt-tail")
	writeJournal(t, dir,
		acceptLine(t, 1, spec, 2),
		`{"seq":2,"op":"accept","kind":"scenario","key":"sha256:beef","sp`, // torn mid-append
	)

	s := mustNew(t, Config{JournalDir: dir})
	waitReplayed(t, s, 1)
	if jobs := s.Jobs(); len(jobs) != 1 || jobs[0].Status().State != StateDone {
		t.Fatalf("want exactly the 1 intact record replayed to done, got %d job(s)", len(jobs))
	}
	s.Close()

	// A record that parses as JSON but is not usable must also stop the
	// scan — nothing at or after it is trusted.
	dir2 := t.TempDir()
	writeJournal(t, dir2,
		acceptLine(t, 1, spec, 2),
		`{"seq":3,"op":"accept","kind":"scenario","key":"sha256:feed"}`, // no spec: malformed
		acceptLine(t, 4, tinySpec("after-corruption"), 2),
	)
	s2 := mustNew(t, Config{JournalDir: dir2})
	waitReplayed(t, s2, 1)
	if jobs := s2.Jobs(); len(jobs) != 1 {
		t.Fatalf("records after a corrupt one must not replay; got %d job(s)", len(jobs))
	}
	s2.Close()
}

// TestJournalCollapseAndCompaction exercises the journal's two
// size-control mechanisms directly: an end that outruns its accept
// collapses the pair to zero records, and accumulating terminal records
// triggers a rewrite that keeps only live accepts.
func TestJournalCollapseAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, pending, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending records", len(pending))
	}

	// End before accept: both vanish.
	seq := l.next()
	l.end(seq, StateDone)
	l.accept(journalRecord{Seq: seq, Op: "accept", Kind: "scenario", Key: "sha256:1", Spec: []byte(`{}`), Reps: 1})
	if data, _ := os.ReadFile(filepath.Join(dir, journalFile)); len(data) != 0 {
		t.Fatalf("collapsed accept/end pair left %d bytes in the journal", len(data))
	}

	// Compaction: with compactEvery=2, the second end rewrites the file
	// down to the single still-live accept.
	l.compactEvery = 2
	var seqs []int64
	for i := 0; i < 3; i++ {
		sq := l.next()
		seqs = append(seqs, sq)
		l.accept(journalRecord{Seq: sq, Op: "accept", Kind: "scenario",
			Key: fmt.Sprintf("sha256:%d", i), Spec: []byte(`{}`), Reps: 1})
	}
	l.end(seqs[0], StateDone)
	l.end(seqs[1], StateDone)
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 1 {
		t.Fatalf("compacted journal has %d line(s), want 1 live accept:\n%s", lines, data)
	}
	l.close()

	// Reopen: exactly the live record survives.
	l2, pending, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2.close()
	if len(pending) != 1 || pending[0].Seq != seqs[2] {
		t.Fatalf("reopened journal pending = %+v, want the one live seq %d", pending, seqs[2])
	}
}

// TestPanicIsolatedToJob pins panic isolation: a replication that
// panics fails exactly its own job — with the panic value and stack in
// the job error and the panics counter bumped — while the worker
// goroutine survives to run the next job.
func TestPanicIsolatedToJob(t *testing.T) {
	var boom atomic.Bool
	boom.Store(true)
	s := mustNew(t, Config{RepWorkers: 2, faults: &Faults{
		RepHook: func() {
			if boom.Load() {
				panic("injected replication panic")
			}
		},
	}})
	defer s.Close()

	j1, _, _, err := s.Submit(tinySpec("panic-victim"), 3)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	st := j1.Status()
	if st.State != StateFailed {
		t.Fatalf("panicking job state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "injected replication panic") || !strings.Contains(st.Error, "goroutine") {
		t.Fatalf("job error lacks panic value or stack:\n%s", st.Error)
	}
	c, _ := s.Stats()
	if c.Panics != 1 || c.Failed != 1 {
		t.Fatalf("counters after panic = %+v, want panics=1 failed=1", c)
	}

	// The same workers must still serve.
	boom.Store(false)
	j2, _, _, err := s.Submit(tinySpec("panic-survivor"), 3)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("job after the panic = %+v, want done", st)
	}
}

// TestJobTimeout pins the per-job deadline: a job overrunning
// Config.JobTimeout lands in timed_out (not cancelled, not failed), the
// counter records it, and /result answers 504.
func TestJobTimeout(t *testing.T) {
	s := mustNew(t, Config{JobTimeout: 50 * time.Millisecond, RepWorkers: 1, faults: &Faults{
		RepHook: func() { time.Sleep(20 * time.Millisecond) },
	}})
	defer s.Close()

	j, _, _, err := s.Submit(tinySpec("deadline-overrun"), 50)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.Status(); st.State != StateTimedOut {
		t.Fatalf("overrunning job = %+v, want timed_out", st)
	}
	c, _ := s.Stats()
	if c.TimedOut != 1 || c.Cancelled != 0 {
		t.Fatalf("counters = %+v, want timed_out=1 cancelled=0", c)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.ID() + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("/result for a timed-out job = %d, want 504", resp.StatusCode)
	}

	// The request-level deadline is capped by the server limit, and
	// requests without one inherit it.
	cfg := Config{JobTimeout: 50 * time.Millisecond}
	if got := cfg.effectiveTimeout(time.Hour); got != 50*time.Millisecond {
		t.Errorf("effectiveTimeout(1h) under a 50ms cap = %s", got)
	}
	if got := cfg.effectiveTimeout(0); got != 50*time.Millisecond {
		t.Errorf("effectiveTimeout(0) = %s, want the server limit", got)
	}
	if got := cfg.effectiveTimeout(10 * time.Millisecond); got != 10*time.Millisecond {
		t.Errorf("effectiveTimeout(10ms) = %s, want the request value", got)
	}
	if got := (Config{}).effectiveTimeout(time.Minute); got != time.Minute {
		t.Errorf("effectiveTimeout without a server limit = %s, want the request value", got)
	}
}

// TestRequestTimeoutOverride: a per-request deadline on a server with
// no global limit times the job out on its own.
func TestRequestTimeoutOverride(t *testing.T) {
	s := mustNew(t, Config{RepWorkers: 1, faults: &Faults{
		RepHook: func() { time.Sleep(20 * time.Millisecond) },
	}})
	defer s.Close()
	j, _, _, err := s.SubmitTimeout(tinySpec("request-deadline"), 50, 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if st := j.Status(); st.State != StateTimedOut {
		t.Fatalf("job = %+v, want timed_out", st)
	}
}

// TestReadyzDegradedJournal pins the degraded-readiness contract:
// repeated consecutive journal write failures flip /readyz to 503
// (reason included) while /healthz stays 200, the failures surface in
// /v1/stats, and a successful write restores readiness.
func TestReadyzDegradedJournal(t *testing.T) {
	var fail atomic.Bool
	s := mustNew(t, Config{JournalDir: t.TempDir(), faults: &Faults{
		JournalWrite: func([]byte) error {
			if fail.Load() {
				return errors.New("injected: no space left on device")
			}
			return nil
		},
	}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, buf.String()
	}

	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("healthy /readyz = %d, want 200", code)
	}

	// Hold the worker so no job can end (and collapse its accept away)
	// before the failed accept writes are counted.
	proceed := make(chan struct{})
	s.testHoldRun = func(*Job) { <-proceed }
	fail.Store(true)
	var jobs []*Job
	for i := 0; i < degradedAfter; i++ {
		j, _, _, err := s.Submit(tinySpec(fmt.Sprintf("degraded-%d", i)), 2)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "journal degraded") {
		t.Fatalf("/readyz under journal failure = %d %q, want 503 with reason", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz under journal failure = %d, want 200 (liveness is not readiness)", code)
	}
	c, _ := s.Stats()
	if c.JournalWriteFailures < degradedAfter {
		t.Fatalf("journal_write_failures = %d, want ≥ %d", c.JournalWriteFailures, degradedAfter)
	}
	close(proceed)
	for _, j := range jobs {
		waitDone(t, j)
	}

	// Recovery: one successful accept write resets the streak.
	fail.Store(false)
	j, _, _, err := s.Submit(tinySpec("recovered"), 2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d %q, want 200", code, body)
	}
}

// TestReadyzQueueSaturated: a full queue means the next submission
// would bounce, so /readyz reports 503 — and the 503 a bounced
// submission gets carries a computed Retry-After.
func TestReadyzQueueSaturated(t *testing.T) {
	s := mustNew(t, Config{QueueDepth: 1, Workers: 1})
	held := make(chan *Job, 1)
	release := make(chan struct{})
	s.testHoldRun = func(j *Job) { held <- j; <-release }

	jA, _, _, err := s.Submit(tinySpec("saturate-a"), 2)
	if err != nil {
		t.Fatal(err)
	}
	<-held // worker holds job A; the queue slot is free again
	if _, _, _, err := s.Submit(tinySpec("saturate-b"), 2); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a saturated queue = %d, want 503", resp.StatusCode)
	}

	// A third submission bounces with 503 + Retry-After.
	body := `{"spec":{"name":"saturate-c","sim_time_us":1e6,"stations":[{"count":2}]},"reps":2}`
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") == "" {
		t.Fatalf("saturated submission = %d Retry-After %q, want 503 with a hint",
			resp2.StatusCode, resp2.Header.Get("Retry-After"))
	}

	close(release)
	waitDone(t, jA)
	s.Close()
}

// TestRetryAfterEstimate pins the backpressure hint arithmetic: mean
// observed service time × queue depth ÷ workers, floored at 1s.
func TestRetryAfterEstimate(t *testing.T) {
	cfg := Config{Workers: 2, QueueDepth: 4}.withDefaults()
	s := &Server{cfg: cfg, queue: make(chan *Job, cfg.QueueDepth)}
	s.svcRuns, s.svcTotal = 2, 4*time.Second // mean 2s
	for i := 0; i < 3; i++ {
		s.queue <- &Job{}
	}
	if got := s.RetryAfter(); got != 3*time.Second { // ceil(2s × 3 / 2)
		t.Errorf("RetryAfter = %s, want 3s", got)
	}

	// No sample or an empty queue: the 1s floor.
	empty := &Server{cfg: cfg, queue: make(chan *Job, cfg.QueueDepth)}
	if got := empty.RetryAfter(); got != time.Second {
		t.Errorf("RetryAfter with no history = %s, want 1s", got)
	}
}

// TestPredictCoalesce pins /v1/predict single-flight: concurrent cache
// misses of one key produce exactly one solve; the followers wait and
// return the leader's bytes, counted as predict_coalesced.
func TestPredictCoalesce(t *testing.T) {
	const followers = 3
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s := mustNew(t, Config{faults: &Faults{
		PredictSolve: func() {
			once.Do(func() { close(entered) })
			<-release
		},
	}})
	defer s.Close()
	spec := tinySpec("predict-coalesce")

	type outcome struct {
		json []byte
		err  error
	}
	results := make(chan outcome, followers+1)
	go func() {
		data, _, _, err := s.Predict(spec)
		results <- outcome{data, err}
	}()
	<-entered // the leader owns the flight; followers must now coalesce
	for i := 0; i < followers; i++ {
		go func() {
			data, _, _, err := s.Predict(spec)
			results <- outcome{data, err}
		}()
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		c, _ := s.Stats()
		if c.PredictCoalesced == followers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never attached: predict_coalesced = %d", c.PredictCoalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	var first []byte
	for i := 0; i < followers+1; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if first == nil {
			first = r.json
		} else if !bytes.Equal(first, r.json) {
			t.Fatal("coalesced predict returned different bytes than the leader")
		}
	}
	c, _ := s.Stats()
	if c.Predictions != followers+1 || c.PredictCoalesced != followers || c.PredictCacheHits != 0 {
		t.Fatalf("counters = %+v, want %d predictions, %d coalesced, 0 cache hits",
			c, followers+1, followers)
	}
	// The flight is gone; the next call is a plain cache hit.
	if _, _, cached, err := s.Predict(spec); err != nil || !cached {
		t.Fatalf("post-flight predict cached=%v err=%v, want cache hit", cached, err)
	}
}

// TestRegistryOverflowCounter: when every resident job is still live,
// the MaxJobs bound cannot evict anything and the overflow counter
// records the excursion.
func TestRegistryOverflowCounter(t *testing.T) {
	s := mustNew(t, Config{MaxJobs: 1, Workers: 1})
	held := make(chan *Job, 1)
	release := make(chan struct{})
	s.testHoldRun = func(j *Job) { held <- j; <-release }

	jA, _, _, err := s.Submit(tinySpec("overflow-a"), 2)
	if err != nil {
		t.Fatal(err)
	}
	<-held
	jB, _, _, err := s.Submit(tinySpec("overflow-b"), 2)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := s.Stats()
	if c.RegistryOverflow != 1 {
		t.Fatalf("registry_overflow = %d, want 1 (two live jobs, bound 1)", c.RegistryOverflow)
	}
	close(release)
	waitDone(t, jA)
	waitDone(t, jB)
	s.Close()
}

// TestDrainAbandonsAndReplays pins graceful shutdown's journal
// contract: a job Drain gives up on keeps its journal record
// non-terminal, so the next start replays it to the same result — while
// a job that finishes within the drain window is retired normally.
func TestDrainAbandonsAndReplays(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("drain-abandon")
	s := mustNew(t, Config{JournalDir: dir, RepWorkers: 1, faults: &Faults{
		RepHook: func() { time.Sleep(20 * time.Millisecond) },
	}})
	j, _, _, err := s.Submit(spec, 50) // ≥ 1s of injected sleep: cannot finish in time
	if err != nil {
		t.Fatal(err)
	}
	drained, abandoned := s.Drain(0)
	if drained != 0 || abandoned != 1 {
		t.Fatalf("Drain = (%d drained, %d abandoned), want (0, 1)", drained, abandoned)
	}
	if st := j.Status(); st.State != StateCancelled {
		t.Fatalf("abandoned job state = %s, want cancelled", st.State)
	}
	s.Close()

	// Restart: the abandoned job replays and completes.
	s2 := mustNew(t, Config{JournalDir: dir})
	waitReplayed(t, s2, 1)
	jobs := s2.Jobs()
	if len(jobs) != 1 || jobs[0].Status().State != StateDone || !jobs[0].Status().Replayed {
		t.Fatalf("restart did not replay the abandoned job to done: %d job(s)", len(jobs))
	}
	s2.Close()

	// The graceful half: a job that finishes within the window drains
	// and its record is retired — nothing replays on the next start.
	// (The injected per-rep sleep keeps the job provably non-terminal
	// at the Drain call without making it slow enough to abandon.)
	dir2 := t.TempDir()
	s3 := mustNew(t, Config{JournalDir: dir2, RepWorkers: 1, faults: &Faults{
		RepHook: func() { time.Sleep(10 * time.Millisecond) },
	}})
	if _, _, _, err := s3.Submit(tinySpec("drain-finish"), 2); err != nil {
		t.Fatal(err)
	}
	drained, abandoned = s3.Drain(30 * time.Second)
	if drained != 1 || abandoned != 0 {
		t.Fatalf("graceful Drain = (%d drained, %d abandoned), want (1, 0)", drained, abandoned)
	}
	s3.Close()
	jl, pending, err := openJournal(dir2, nil)
	if err != nil {
		t.Fatal(err)
	}
	jl.close()
	if len(pending) != 0 {
		t.Fatalf("drained journal still has %d live record(s)", len(pending))
	}
}

// TestDiskCacheFaultDegradesReadiness: injected disk-cache write
// failures count in stats and flip /readyz after the threshold, without
// affecting the served results (memory tier unaffected).
func TestDiskCacheFaultDegradesReadiness(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	s := mustNew(t, Config{CacheDir: t.TempDir(), faults: &Faults{
		DiskCacheWrite: func(string) error {
			if fail.Load() {
				return errors.New("injected disk-cache failure")
			}
			return nil
		},
	}})
	defer s.Close()

	for i := 0; i < degradedAfter; i++ {
		j, _, _, err := s.Submit(tinySpec(fmt.Sprintf("cache-fault-%d", i)), 2)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job under disk-cache failure = %+v, want done (drop is best-effort)", st)
		}
	}
	if ok, reason := s.Ready(); ok || !strings.Contains(reason, "disk cache degraded") {
		t.Fatalf("Ready() = %v %q, want unready with disk-cache reason", ok, reason)
	}
	c, _ := s.Stats()
	if c.DiskCacheWriteFailures < degradedAfter {
		t.Fatalf("disk_cache_write_failures = %d, want ≥ %d", c.DiskCacheWriteFailures, degradedAfter)
	}

	fail.Store(false)
	j, _, _, err := s.Submit(tinySpec("cache-fault-recovered"), 2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if ok, reason := s.Ready(); !ok {
		t.Fatalf("Ready() after recovery = false (%s), want true", reason)
	}
}
