package serve

import (
	"container/list"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// entry is one cached result: the verbatim JSON bytes the /result
// endpoint serves (bit-identical across hits) and the CLI-identical
// text rendering.
type entry struct {
	key  string
	json []byte
	text string
}

// size is the entry's resident-memory charge against the byte budget.
func (e entry) size() int { return len(e.json) + len(e.text) }

// cache is a content-addressed LRU over computed results, optionally
// persisted to a directory. The memory tier bounds both entry count
// and total bytes (a report embeds raw per-replication metrics, so a
// few large studies could otherwise pin far more memory than the
// entry count suggests); the disk tier (when configured) is unbounded
// and consulted on memory misses, so results survive restarts and LRU
// eviction.
type cache struct {
	mu       sync.Mutex
	max      int
	maxBytes int
	bytes    int
	dir      string
	faults   *Faults    // nil in production (test-only write-failure injection)
	dropOnce sync.Once  // first dropped disk write is logged, later ones suppressed
	ll       *list.List // front = most recently used; values are entry
	items    map[string]*list.Element

	// Disk-write failure accounting: consecutive resets on every
	// successful write, total only grows. Atomics, not c.mu — the
	// counters are read by /readyz and /v1/stats while writes are in
	// flight outside the lock.
	consecDiskFailures atomic.Int64
	totalDiskFailures  atomic.Int64

	// diskOccupancy tracks the disk tier's byte count: seeded by a
	// directory walk at startup, then maintained incrementally (each
	// successful store adds the delta against the file it replaced).
	// Atomic for the same reason as the failure counters — /v1/stats
	// and /metrics read it while writes are in flight.
	diskOccupancy atomic.Int64
}

// newCache builds the cache and, when a persistence directory is
// configured, verifies it is actually usable — created (or creatable)
// and writable — so a typo'd or read-only -cache-dir fails server
// startup loudly instead of silently running without persistence.
func newCache(max, maxBytes int, dir string, faults *Faults) (*cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir %s: %w", dir, err)
		}
		probe, err := os.CreateTemp(dir, ".probe-*")
		if err != nil {
			return nil, fmt.Errorf("serve: cache dir %s is not writable: %w", dir, err)
		}
		name := probe.Name()
		probe.Close() //plclint:allow journalerr -- writability probe, deleted on the next line; nothing durable is in it
		os.Remove(name)
	}
	c := &cache{max: max, maxBytes: maxBytes, dir: dir, faults: faults, ll: list.New(), items: make(map[string]*list.Element)}
	if dir != "" {
		c.diskOccupancy.Store(diskDirBytes(dir))
	}
	return c, nil
}

// diskDirBytes sums the persisted results' sizes — the disk tier's
// startup occupancy. Best-effort: entries that vanish mid-walk are
// skipped, temp files are not counted.
func diskDirBytes(dir string) int64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		if info, err := de.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// bytesUsed returns the memory tier's resident byte count.
func (c *cache) bytesUsed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// diskBytes returns the disk tier's byte occupancy (0 without a dir).
func (c *cache) diskBytes() int64 {
	return c.diskOccupancy.Load()
}

// diskFailures snapshots the disk-write failure counters.
func (c *cache) diskFailures() (consecutive, total int64) {
	return c.consecDiskFailures.Load(), c.totalDiskFailures.Load()
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// get returns the entry for key, faulting it in from the disk tier on
// a memory miss. disk reports whether the hit came from disk. The disk
// read runs outside the cache lock, so slow I/O never stalls
// concurrent memory-tier lookups.
func (c *cache) get(key string) (e entry, disk, ok bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(entry)
		c.mu.Unlock()
		return e, false, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return entry{}, false, false
	}
	e, ok = c.loadDisk(key)
	if !ok {
		return entry{}, false, false
	}
	c.mu.Lock()
	c.insertLocked(e)
	c.mu.Unlock()
	return e, true, true
}

// put stores a computed entry in both tiers. Like get's disk fault,
// the disk write runs outside c.mu so persistence I/O never stalls
// concurrent memory-tier lookups.
func (c *cache) put(e entry) {
	c.mu.Lock()
	c.insertLocked(e)
	c.mu.Unlock()
	if c.dir != "" {
		c.storeDisk(e)
	}
}

// insertLocked adds e to the memory tier, evicting LRU entries while
// either budget (count or bytes) is exceeded — but always keeping the
// newest entry, so even an oversized result serves its immediate
// resubmissions. A concurrent insert of the same key (two goroutines
// faulting the same file in) collapses to a refresh. c.mu must be
// held.
func (c *cache) insertLocked(e entry) {
	if el, ok := c.items[e.key]; ok {
		c.ll.MoveToFront(el)
		c.bytes += e.size() - el.Value.(entry).size()
		el.Value = e
		return
	}
	c.items[e.key] = c.ll.PushFront(e)
	c.bytes += e.size()
	for c.ll.Len() > 1 && (c.ll.Len() > c.max || c.bytes > c.maxBytes) {
		el := c.ll.Back()
		old := el.Value.(entry)
		delete(c.items, old.key)
		c.bytes -= old.size()
		c.ll.Remove(el)
	}
}

// path maps a fingerprint to its persistence file: the hex digest with
// the algorithm prefix stripped (fingerprints are "sha256:<hex>", and
// the hex alone is filesystem-safe).
func (c *cache) path(key string) string {
	name := strings.TrimPrefix(key, "sha256:")
	return filepath.Join(c.dir, name+".json")
}

// loadDisk reads and verifies one persisted result. A file that does
// not parse or whose embedded key disagrees is ignored (treated as a
// miss), never trusted. Scenario results and campaign results share
// the key/text envelope, so one loader serves both kinds; the full
// payload is kept verbatim, which is what preserves byte-identity
// across restarts.
func (c *cache) loadDisk(key string) (entry, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return entry{}, false
	}
	var env struct {
		Key  string `json:"key"`
		Text string `json:"text"`
	}
	if err := json.Unmarshal(data, &env); err != nil || env.Key != key {
		return entry{}, false
	}
	return entry{key: key, json: data, text: env.Text}, true
}

// storeDisk persists one result atomically (temp file + rename), so a
// crashed write can never leave a half-written result that a later
// lookup would serve. Persistence stays best-effort — the memory tier
// holds the result either way — but a dropped write is no longer
// silent: the first failure is logged (later ones are suppressed, so a
// full disk cannot flood the log).
func (c *cache) storeDisk(e entry) {
	drop := func(err error) {
		c.consecDiskFailures.Add(1)
		c.totalDiskFailures.Add(1)
		c.dropOnce.Do(func() {
			log.Printf("serve: cache: dropping result persistence to %s: %v (memory tier unaffected; further drops suppressed)", c.dir, err)
		})
	}
	if f := c.faults; f != nil && f.DiskCacheWrite != nil {
		if err := f.DiskCacheWrite(e.key); err != nil {
			drop(err)
			return
		}
	}
	tmp, err := os.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		drop(err)
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(e.json)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		if werr != nil {
			drop(werr)
		} else {
			drop(cerr)
		}
		return
	}
	// Occupancy delta: stat the file this rename replaces (usually
	// absent) before it disappears, so rewrites don't double-count.
	var replaced int64
	if info, err := os.Stat(c.path(e.key)); err == nil {
		replaced = info.Size()
	}
	if err := os.Rename(name, c.path(e.key)); err != nil {
		os.Remove(name)
		drop(err)
		return
	}
	c.diskOccupancy.Add(int64(len(e.json)) - replaced)
	c.consecDiskFailures.Store(0)
}
