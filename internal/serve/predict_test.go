package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// modelSpecJSON is a small model-engine spec in wire form.
const modelSpecJSON = `{"name":"predict-me","engine":"model","sim_time_us":1e7,"sweep_n":[2,5],"stations":[{"count":1}]}`

// TestPredictSynchronous pins the /v1/predict contract: the first call
// solves and reports a cache miss, the second is a byte-identical hit,
// and ?format=text returns the CLI rendering embedded in the JSON.
func TestPredictSynchronous(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"spec":%s}`, modelSpecJSON)
	post := func(path string) (int, []byte, http.Header) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), resp.Header
	}

	code, first, hdr := post("/v1/predict")
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first predict: code=%d x-cache=%q", code, hdr.Get("X-Cache"))
	}
	var res Result
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatalf("predict response does not parse: %v", err)
	}
	if res.Report == nil || res.Report.Reps != 1 || len(res.Report.Points) != 2 {
		t.Fatalf("predict report shape: %+v", res.Report)
	}
	if res.Report.Spec.Engine != "model" {
		t.Errorf("predict ran engine %q", res.Report.Spec.Engine)
	}

	code, second, hdr := post("/v1/predict")
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second predict: code=%d x-cache=%q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Error("cached prediction differs byte-wise from the computed one")
	}

	code, text, _ := post("/v1/predict?format=text")
	if code != http.StatusOK || string(text) != res.Text {
		t.Fatalf("text form: code=%d, text/JSON mismatch", code)
	}
	if !strings.Contains(string(text), "(n=1, no CI)") {
		t.Errorf("analytic rendering should carry zero-width CIs:\n%s", text)
	}

	counters, _ := s.Stats()
	if counters.Predictions != 3 || counters.PredictCacheHits != 2 {
		t.Errorf("predict counters: %+v", counters)
	}
	if counters.Submissions != 0 {
		t.Errorf("predict must not count as a queue submission: %+v", counters)
	}
}

// TestPredictForcesModelEngine: a sim-engine spec predicts fine (the
// engine is overridden), while a mac-only spec is a 400 naming the
// unsupported feature.
func TestPredictForcesModelEngine(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	simSpec := `{"name":"sim-spec","engine":"sim","sim_time_us":1e6,"stations":[{"count":3}]}`
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(fmt.Sprintf(`{"spec":%s}`, simSpec)))
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sim spec prediction: code=%d err=%v", resp.StatusCode, err)
	}
	if res.Report.Spec.Engine != "model" {
		t.Errorf("predict kept engine %q, want model override", res.Report.Spec.Engine)
	}

	macSpec := `{"name":"mac-spec","sim_time_us":1e6,"beacon_period_us":33330,"stations":[{"count":2}]}`
	resp, err = http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(fmt.Sprintf(`{"spec":%s}`, macSpec)))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mac-only spec predicted: code=%d body=%s", resp.StatusCode, body.String())
	}
	if !strings.Contains(body.String(), `engine \"model\" cannot express`) {
		t.Errorf("error does not name the unsupported feature: %s", body.String())
	}
}

// TestModelSpecOnJobQueue: a model-engine spec rides the ordinary job
// queue, collapses any reps to one deterministic evaluation, and shares
// its cache entry with /v1/predict — whichever path computed first.
func TestModelSpecOnJobQueue(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()

	spec, err := specFromJSON(modelSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	j, cached, _, err := s.Submit(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first model submission claimed a cache hit")
	}
	waitDone(t, j)
	jobJSON, _, ok := j.Result()
	if !ok {
		t.Fatalf("model job has no result: %+v", j.Status())
	}
	var res Result
	if err := json.Unmarshal(jobJSON, &res); err != nil {
		t.Fatal(err)
	}
	if res.Report.Reps != 1 {
		t.Errorf("model job reps = %d, want collapsed to 1", res.Report.Reps)
	}

	// A different reps value fingerprints to the same collapsed study.
	j2, cached, _, err := s.Submit(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || j2.Key() != j.Key() {
		t.Errorf("reps=42 model submission: cached=%v key=%s want hit on %s", cached, j2.Key(), j.Key())
	}

	// Predict reads the same entry the queue wrote.
	predJSON, _, cachedPred, err := s.Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cachedPred {
		t.Error("predict missed the cache entry the job queue wrote")
	}
	if !bytes.Equal(predJSON, jobJSON) {
		t.Error("predict bytes differ from the job-queue bytes for the same spec")
	}
}

// specFromJSON decodes a spec literal for Submit-level tests.
func specFromJSON(s string) (scenario.Spec, error) {
	return scenario.Parse([]byte(s))
}

// TestNewFailsFastOnUnusableCacheDir: the silent-persistence bug — a
// typo'd or unwritable -cache-dir must abort startup, not run without
// persistence.
func TestNewFailsFastOnUnusableCacheDir(t *testing.T) {
	// A regular file where the directory should be: MkdirAll fails.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CacheDir: file}); err == nil {
		t.Error("New accepted a cache dir that is a regular file")
	}
	if _, err := New(Config{CacheDir: filepath.Join(file, "below")}); err == nil {
		t.Error("New accepted a cache dir under a regular file")
	}

	// A read-only directory: creation succeeds, writing must not.
	ro := filepath.Join(t.TempDir(), "ro")
	if err := os.MkdirAll(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if os.Getuid() != 0 { // root bypasses permission bits
		if _, err := New(Config{CacheDir: ro}); err == nil {
			t.Error("New accepted a read-only cache dir")
		}
	}

	// And the happy path still works, creating nested directories.
	nested := filepath.Join(t.TempDir(), "a", "b")
	s, err := New(Config{CacheDir: nested})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if fi, err := os.Stat(nested); err != nil || !fi.IsDir() {
		t.Errorf("cache dir not created: %v", err)
	}
}
