package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// modelSpecJSON is a small model-engine spec in wire form.
const modelSpecJSON = `{"name":"predict-me","engine":"model","sim_time_us":1e7,"sweep_n":[2,5],"stations":[{"count":1}]}`

// TestPredictSynchronous pins the /v1/predict contract: the first call
// solves and reports a cache miss, the second is a byte-identical hit,
// and ?format=text returns the CLI rendering embedded in the JSON.
func TestPredictSynchronous(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := fmt.Sprintf(`{"spec":%s}`, modelSpecJSON)
	post := func(path string) (int, []byte, http.Header) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), resp.Header
	}

	code, first, hdr := post("/v1/predict")
	if code != http.StatusOK || hdr.Get("X-Cache") != "miss" {
		t.Fatalf("first predict: code=%d x-cache=%q", code, hdr.Get("X-Cache"))
	}
	var res Result
	if err := json.Unmarshal(first, &res); err != nil {
		t.Fatalf("predict response does not parse: %v", err)
	}
	if res.Report == nil || res.Report.Reps != 1 || len(res.Report.Points) != 2 {
		t.Fatalf("predict report shape: %+v", res.Report)
	}
	if res.Report.Spec.Engine != "model" {
		t.Errorf("predict ran engine %q", res.Report.Spec.Engine)
	}

	code, second, hdr := post("/v1/predict")
	if code != http.StatusOK || hdr.Get("X-Cache") != "hit" {
		t.Fatalf("second predict: code=%d x-cache=%q", code, hdr.Get("X-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Error("cached prediction differs byte-wise from the computed one")
	}

	code, text, _ := post("/v1/predict?format=text")
	if code != http.StatusOK || string(text) != res.Text {
		t.Fatalf("text form: code=%d, text/JSON mismatch", code)
	}
	if !strings.Contains(string(text), "(n=1, no CI)") {
		t.Errorf("analytic rendering should carry zero-width CIs:\n%s", text)
	}

	counters, _ := s.Stats()
	if counters.Predictions != 3 || counters.PredictCacheHits != 2 {
		t.Errorf("predict counters: %+v", counters)
	}
	if counters.Submissions != 0 {
		t.Errorf("predict must not count as a queue submission: %+v", counters)
	}
}

// TestPredictForcesModelEngine: a sim-engine spec predicts fine (the
// engine is overridden), while a mac-only spec is a 400 naming the
// unsupported feature.
func TestPredictForcesModelEngine(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	simSpec := `{"name":"sim-spec","engine":"sim","sim_time_us":1e6,"stations":[{"count":3}]}`
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(fmt.Sprintf(`{"spec":%s}`, simSpec)))
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("sim spec prediction: code=%d err=%v", resp.StatusCode, err)
	}
	if res.Report.Spec.Engine != "model" {
		t.Errorf("predict kept engine %q, want model override", res.Report.Spec.Engine)
	}

	macSpec := `{"name":"mac-spec","sim_time_us":1e6,"beacon_period_us":33330,"stations":[{"count":2}]}`
	resp, err = http.Post(ts.URL+"/v1/predict", "application/json",
		strings.NewReader(fmt.Sprintf(`{"spec":%s}`, macSpec)))
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mac-only spec predicted: code=%d body=%s", resp.StatusCode, body.String())
	}
	if !strings.Contains(body.String(), `engine \"model\" cannot express`) {
		t.Errorf("error does not name the unsupported feature: %s", body.String())
	}
}

// TestModelSpecOnJobQueue: a model-engine spec rides the ordinary job
// queue, collapses any reps to one deterministic evaluation, and shares
// its cache entry with /v1/predict — whichever path computed first.
func TestModelSpecOnJobQueue(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()

	spec, err := specFromJSON(modelSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	j, cached, _, err := s.Submit(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first model submission claimed a cache hit")
	}
	waitDone(t, j)
	jobJSON, _, ok := j.Result()
	if !ok {
		t.Fatalf("model job has no result: %+v", j.Status())
	}
	var res Result
	if err := json.Unmarshal(jobJSON, &res); err != nil {
		t.Fatal(err)
	}
	if res.Report.Reps != 1 {
		t.Errorf("model job reps = %d, want collapsed to 1", res.Report.Reps)
	}

	// A different reps value fingerprints to the same collapsed study.
	j2, cached, _, err := s.Submit(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || j2.Key() != j.Key() {
		t.Errorf("reps=42 model submission: cached=%v key=%s want hit on %s", cached, j2.Key(), j.Key())
	}

	// Predict reads the same entry the queue wrote.
	predJSON, _, cachedPred, err := s.Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cachedPred {
		t.Error("predict missed the cache entry the job queue wrote")
	}
	if !bytes.Equal(predJSON, jobJSON) {
		t.Error("predict bytes differ from the job-queue bytes for the same spec")
	}
}

// specFromJSON decodes a spec literal for Submit-level tests.
func specFromJSON(s string) (scenario.Spec, error) {
	return scenario.Parse([]byte(s))
}

// widenedSpecJSON exercises both regimes the loaded fixed point added:
// Poisson offered load and mixed CA0–CA3 priority classes.
const widenedSpecJSON = `{"name":"predict-wide","sim_time_us":1e7,"seed":1,"stations":[
	{"count":2,"priority":"CA1","traffic":{"kind":"poisson","mean_interarrival_us":50000}},
	{"count":1,"priority":"CA3","traffic":{"kind":"poisson","mean_interarrival_us":200000}},
	{"count":1,"priority":"CA0","traffic":{"kind":"none"}}]}`

// TestPredictWidenedRegimes: an unsaturated mixed-priority spec —
// inexpressible by the model engine before the loaded fixed point —
// answers through /v1/predict, and the resulting report is
// byte-identical across the predict path, the job queue, the
// standalone CLI path (scenario.Replications) and a campaign grid
// point wrapping the same spec.
func TestPredictWidenedRegimes(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()

	spec, err := specFromJSON(widenedSpecJSON)
	if err != nil {
		t.Fatal(err)
	}
	predJSON, _, cached, err := s.Predict(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first widened predict claimed a cache hit")
	}
	var res Result
	if err := json.Unmarshal(predJSON, &res); err != nil {
		t.Fatal(err)
	}
	if res.Report.Spec.Engine != scenario.EngineModel || res.Report.Reps != 1 {
		t.Fatalf("widened predict: engine=%q reps=%d", res.Report.Spec.Engine, res.Report.Reps)
	}
	byName := map[string]float64{}
	for _, m := range res.Report.Points[0].Metrics {
		byName[m.Name] = m.Summary.Mean
	}
	if byName["throughput_ca3"] <= 0 || byName["throughput_ca1"] <= 0 {
		t.Errorf("per-class split missing: %+v", byName)
	}

	// Job queue: the same spec pinned to the model engine rides the
	// ordinary queue and shares the cache entry predict wrote.
	ms := spec
	ms.Engine = scenario.EngineModel
	j, jobCached, _, err := s.Submit(ms, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !jobCached {
		t.Error("job queue missed the cache entry predict wrote")
	}
	waitDone(t, j)
	jobJSON, _, ok := j.Result()
	if !ok {
		t.Fatalf("widened job has no result: %+v", j.Status())
	}
	if !bytes.Equal(predJSON, jobJSON) {
		t.Error("job-queue bytes differ from predict bytes for the same widened spec")
	}

	// Standalone CLI path: Compile + Replications on the same spec.
	c, err := scenario.Compile(ms)
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := scenario.Replications(c, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	standaloneJSON, err := json.Marshal(standalone)
	if err != nil {
		t.Fatal(err)
	}
	reportJSON, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON, standaloneJSON) {
		t.Errorf("predict report differs from the standalone path:\npredict:    %s\nstandalone: %s",
			reportJSON, standaloneJSON)
	}

	// Campaign grid point: a one-point campaign wrapping the spec
	// produces the same report bytes (point 0 keeps the base seed).
	camp := campaign.Spec{
		Name: "wide-wrap",
		Base: ms,
		Axes: []campaign.Axis{{Path: "stations[0].count", Values: []json.RawMessage{json.RawMessage("2")}}},
		Reps: 1,
	}
	cc, err := campaign.Compile(camp)
	if err != nil {
		t.Fatal(err)
	}
	crep, err := campaign.Run(cc, campaign.Opts{})
	if err != nil {
		t.Fatal(err)
	}
	pointJSON, err := json.Marshal(crep.Points[0].Report)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pointJSON, standaloneJSON) {
		t.Errorf("campaign point report differs from the standalone path:\npoint:      %s\nstandalone: %s",
			pointJSON, standaloneJSON)
	}
}

// TestNewFailsFastOnUnusableCacheDir: the silent-persistence bug — a
// typo'd or unwritable -cache-dir must abort startup, not run without
// persistence.
func TestNewFailsFastOnUnusableCacheDir(t *testing.T) {
	// A regular file where the directory should be: MkdirAll fails.
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{CacheDir: file}); err == nil {
		t.Error("New accepted a cache dir that is a regular file")
	}
	if _, err := New(Config{CacheDir: filepath.Join(file, "below")}); err == nil {
		t.Error("New accepted a cache dir under a regular file")
	}

	// A read-only directory: creation succeeds, writing must not.
	ro := filepath.Join(t.TempDir(), "ro")
	if err := os.MkdirAll(ro, 0o555); err != nil {
		t.Fatal(err)
	}
	if os.Getuid() != 0 { // root bypasses permission bits
		if _, err := New(Config{CacheDir: ro}); err == nil {
			t.Error("New accepted a read-only cache dir")
		}
	}

	// And the happy path still works, creating nested directories.
	nested := filepath.Join(t.TempDir(), "a", "b")
	s, err := New(Config{CacheDir: nested})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if fi, err := os.Stat(nested); err != nil || !fi.IsDir() {
		t.Errorf("cache dir not created: %v", err)
	}
}
