package serve

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestServeCVDistinctCacheEntries pins the serving-layer half of the
// variance-reduction cache contract: a CV-enabled spec is a different
// computation than the plain spec, so its submission must miss the
// plain entry and produce its own — while a present-but-disabled block
// normalizes away and dedupes onto the plain entry. A collision in
// either direction would serve a report whose estimator does not match
// the submitted spec.
func TestServeCVDistinctCacheEntries(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()

	plain := tinySpec("vr-keys")
	j1, cached, _, err := s.Submit(plain, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first plain submission unexpectedly cached")
	}
	waitDone(t, j1)
	plainJSON, plainText, ok := j1.Result()
	if !ok {
		t.Fatal("plain job has no result")
	}

	cv := tinySpec("vr-keys")
	cv.VarianceReduction = &scenario.VarianceReduction{Kind: scenario.VRControlVariate}
	j2, cached, coalesced, err := s.Submit(cv, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cached || coalesced {
		t.Fatalf("CV submission answered from the plain entry: cached=%v coalesced=%v", cached, coalesced)
	}
	if j2.Key() == j1.Key() {
		t.Fatalf("plain and CV specs share fingerprint %s", j1.Key())
	}
	waitDone(t, j2)
	cvJSON, cvText, ok := j2.Result()
	if !ok {
		t.Fatal("CV job has no result")
	}
	if bytes.Equal(plainJSON, cvJSON) {
		t.Error("plain and CV results are byte-identical; the estimator did not run")
	}
	if !strings.Contains(cvText, "cv") {
		t.Errorf("CV text rendering lacks the estimator annotation:\n%s", cvText)
	}
	if strings.Contains(plainText, "cv") {
		t.Errorf("plain text rendering mentions the estimator:\n%s", plainText)
	}

	// kind "none" is the same study as no block at all: cache hit.
	disabled := tinySpec("vr-keys")
	disabled.VarianceReduction = &scenario.VarianceReduction{Kind: scenario.VRNone}
	j3, cached, _, err := s.Submit(disabled, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("disabled-kind submission missed the plain cache entry")
	}
	if j3.Key() != j1.Key() {
		t.Errorf("disabled-kind fingerprint %s differs from plain %s", j3.Key(), j1.Key())
	}
	disabledJSON, _, ok := j3.Result()
	if !ok {
		t.Fatal("disabled-kind job has no result")
	}
	if !bytes.Equal(plainJSON, disabledJSON) {
		t.Error("disabled-kind result differs from the plain bytes")
	}
}
