package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// tinySpec is a fast sim-engine scenario (fractions of a millisecond
// per replication thanks to idle fast-forward).
func tinySpec(name string) scenario.Spec {
	return scenario.Spec{
		Name:          name,
		SimTimeMicros: 1e6,
		Stations:      []scenario.Group{{Count: 2}},
	}
}

// sweepSpec exercises multi-point jobs.
func sweepSpec(name string) scenario.Spec {
	s := tinySpec(name)
	s.SweepN = []int{1, 2}
	return s
}

// mustNew builds a server from cfg, failing the test on a startup
// error (only possible with an unusable cache dir).
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if st := j.Wait(ctx); !st.Terminal() {
		t.Fatalf("job %s did not reach a terminal state: %s", j.ID(), st)
	}
}

// TestSubmitComputeThenCache pins the core serving contract: a first
// submission computes, a second identical one is answered from the
// cache with byte-identical result JSON and text, and the text equals
// what the CLI path (Replications + Report.Write) produces.
func TestSubmitComputeThenCache(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()

	spec := tinySpec("cache-roundtrip")
	j1, cached, coalesced, err := s.Submit(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cached || coalesced {
		t.Fatalf("first submission: cached=%v coalesced=%v, want false/false", cached, coalesced)
	}
	waitDone(t, j1)
	if st := j1.Status(); st.State != StateDone || st.Done != st.Total || st.Total != 3 {
		t.Fatalf("job 1 status = %+v", st)
	}
	res1, text1, ok := j1.Result()
	if !ok {
		t.Fatal("job 1 has no result")
	}

	j2, cached, coalesced, err := s.Submit(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || coalesced {
		t.Fatalf("second submission: cached=%v coalesced=%v, want true/false", cached, coalesced)
	}
	if j2.ID() == j1.ID() {
		t.Fatal("cached submission must mint a new job ID")
	}
	res2, text2, ok := j2.Result()
	if !ok {
		t.Fatal("cached job has no result")
	}
	if !bytes.Equal(res1, res2) {
		t.Error("cached result JSON differs from computed result")
	}
	if text1 != text2 {
		t.Error("cached text differs from computed text")
	}

	// The text rendering must match the direct CLI path bit for bit.
	c, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := scenario.Replications(c, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if text1 != buf.String() {
		t.Errorf("served text differs from CLI rendering:\nserved:\n%s\ncli:\n%s", text1, buf.String())
	}

	// A different reps count is a different study.
	key3, _ := scenario.Fingerprint(spec, 4)
	if key3 == j1.Key() {
		t.Error("fingerprint ignores reps")
	}

	counters, entries := s.Stats()
	if counters.CacheHits != 1 || counters.Completed != 1 || counters.Submissions != 2 {
		t.Errorf("counters = %+v", counters)
	}
	if entries != 1 {
		t.Errorf("cache entries = %d, want 1", entries)
	}
}

// TestResultJSONCarriesSummaries unmarshals a served result and checks
// the aggregated report inside it.
func TestResultJSONCarriesSummaries(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()

	j, _, _, err := s.Submit(sweepSpec("json-shape"), 4)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	data, _, ok := j.Result()
	if !ok {
		t.Fatalf("no result: %+v", j.Status())
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("result does not parse: %v", err)
	}
	if res.Key != j.Key() {
		t.Errorf("result key %q != job key %q", res.Key, j.Key())
	}
	if res.Report == nil || len(res.Report.Points) != 2 {
		t.Fatalf("want 2 sweep points, got %+v", res.Report)
	}
	for _, p := range res.Report.Points {
		if len(p.Seeds) != 4 || len(p.PerRep) != 4 || len(p.Metrics) == 0 {
			t.Errorf("point N=%d: seeds=%d perrep=%d metrics=%d", p.N, len(p.Seeds), len(p.PerRep), len(p.Metrics))
		}
		for _, m := range p.Metrics {
			if m.Summary.N != 4 {
				t.Errorf("metric %s aggregated over n=%d, want 4", m.Name, m.Summary.N)
			}
		}
	}
	if !strings.Contains(res.Text, "# scenario json-shape") {
		t.Errorf("text rendering missing header:\n%s", res.Text)
	}
}

// TestCoalescing holds the single worker on an unrelated job so that
// two identical submissions deterministically meet in the queue: the
// second must attach to the first's job, not enqueue a duplicate.
func TestCoalescing(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	s.testHoldRun = func(*Job) {
		running <- struct{}{}
		<-release
	}
	defer s.Close()
	defer close(release)

	// Occupy the worker.
	if _, _, _, err := s.Submit(tinySpec("blocker"), 2); err != nil {
		t.Fatal(err)
	}
	<-running // worker is now held inside testHoldRun

	spec := tinySpec("coalesce-me")
	j1, cached, coalesced, err := s.Submit(spec, 2)
	if err != nil || cached || coalesced {
		t.Fatalf("first: j=%v cached=%v coalesced=%v err=%v", j1, cached, coalesced, err)
	}
	j2, cached, coalesced, err := s.Submit(spec, 2)
	if err != nil || cached || !coalesced {
		t.Fatalf("second: cached=%v coalesced=%v err=%v, want coalesced", cached, coalesced, err)
	}
	if j1 != j2 {
		t.Fatal("coalesced submission returned a different job")
	}
	// Different reps: a different study, must NOT coalesce.
	j3, _, coalesced, err := s.Submit(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if coalesced || j3 == j1 {
		t.Fatal("submission with different reps coalesced with a different study")
	}

	counters, _ := s.Stats()
	if counters.Coalesced != 1 {
		t.Errorf("coalesced counter = %d, want 1", counters.Coalesced)
	}
}

// TestQueueFullBackpressure fills the bounded queue behind a held
// worker and checks the overflow submission is rejected, then admitted
// again after capacity frees up.
func TestQueueFullBackpressure(t *testing.T) {
	s := mustNew(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	s.testHoldRun = func(*Job) {
		running <- struct{}{}
		<-release
	}
	defer s.Close()

	held, _, _, err := s.Submit(tinySpec("held"), 2)
	if err != nil {
		t.Fatal(err)
	}
	<-running
	queued, _, _, err := s.Submit(tinySpec("queued"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.Submit(tinySpec("overflow"), 2); err != ErrQueueFull {
		t.Fatalf("overflow submission: err = %v, want ErrQueueFull", err)
	}
	counters, _ := s.Stats()
	if counters.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", counters.Rejected)
	}
	// A rejected submission must leave no ghost job behind.
	for _, j := range s.Jobs() {
		if j.compiled.Spec.Name == "overflow" {
			t.Error("rejected job still registered")
		}
	}

	close(release)
	waitDone(t, held)
	waitDone(t, queued)
	j, _, _, err := s.Submit(tinySpec("after-drain"), 2)
	if err != nil {
		t.Fatalf("submission after drain: %v", err)
	}
	waitDone(t, j)
}

// TestCancelQueuedAndRunning covers both cancellation paths.
func TestCancelQueuedAndRunning(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	gate := make(chan struct{})
	running := make(chan struct{}, 16)
	s.testHoldRun = func(*Job) {
		running <- struct{}{}
		<-gate
	}
	defer s.Close()

	blocker, _, _, err := s.Submit(tinySpec("blocker"), 2)
	if err != nil {
		t.Fatal(err)
	}
	<-running // worker held on blocker

	// Cancel while queued: the worker must skip it entirely.
	queued, _, _, err := s.Submit(tinySpec("cancel-queued"), 2)
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if st := queued.Status(); st.State != StateCancelled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}

	// A long job (many reps) to cancel mid-run once the gate opens.
	long := tinySpec("cancel-running")
	j, _, _, err := s.Submit(long, 500)
	if err != nil {
		t.Fatal(err)
	}
	close(gate) // everything proceeds from here on
	waitDone(t, blocker)
	if st := queued.Status(); st.State != StateCancelled {
		t.Fatalf("cancelled-in-queue job ran anyway: %s", st.State)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.Status().State == StateQueued && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	j.Cancel()
	waitDone(t, j)
	st := j.Status()
	// The cancel races with natural completion; both terminal outcomes
	// are legal, failure is not.
	if st.State != StateCancelled && st.State != StateDone {
		t.Fatalf("cancelled running job: state %s err %q", st.State, st.Error)
	}
	// Whatever the race outcome, the server must still serve new work.
	after, _, _, err := s.Submit(tinySpec("after-cancel"), 2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, after)
	if after.Status().State != StateDone {
		t.Fatalf("post-cancel job: %+v", after.Status())
	}
}

// TestInvalidSubmissions exercises admission control.
func TestInvalidSubmissions(t *testing.T) {
	s := mustNew(t, Config{MaxReps: 10})
	defer s.Close()

	if _, _, _, err := s.Submit(scenario.Spec{}, 2); err == nil {
		t.Error("empty spec admitted")
	}
	if _, _, _, err := s.Submit(tinySpec("reps0"), 0); err == nil {
		t.Error("reps=0 admitted")
	}
	if _, _, _, err := s.Submit(tinySpec("too-many"), 11); err == nil {
		t.Error("reps over MaxReps admitted")
	}
}

// TestDiskPersistence restarts the server on the same cache directory
// and expects a disk hit with byte-identical result.
func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("persist")

	s1 := mustNew(t, Config{CacheDir: dir})
	j1, _, _, err := s1.Submit(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	res1, _, ok := j1.Result()
	if !ok {
		t.Fatal("no result")
	}
	s1.Close()

	s2 := mustNew(t, Config{CacheDir: dir})
	defer s2.Close()
	j2, cached, _, err := s2.Submit(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("restarted server missed the disk cache")
	}
	res2, _, _ := j2.Result()
	if !bytes.Equal(res1, res2) {
		t.Error("disk-cached result differs from originally computed bytes")
	}
	counters, _ := s2.Stats()
	if counters.DiskCacheHits != 1 {
		t.Errorf("disk hits = %d, want 1", counters.DiskCacheHits)
	}

	// A corrupted cache file must be ignored, not served.
	s3 := mustNew(t, Config{CacheDir: t.TempDir()})
	defer s3.Close()
	key, _ := scenario.Fingerprint(spec, 3)
	if err := os.WriteFile(s3.cache.path(key), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cached, _, err = s3.Submit(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("corrupted cache file was served as a hit")
	}
}

// TestLRUEviction bounds the memory tier.
func TestLRUEviction(t *testing.T) {
	s := mustNew(t, Config{CacheEntries: 2})
	defer s.Close()
	for i := 0; i < 3; i++ {
		j, _, _, err := s.Submit(tinySpec(fmt.Sprintf("evict-%d", i)), 2)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
	}
	if n := s.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// Oldest evicted: resubmission recomputes rather than hits.
	_, cached, _, err := s.Submit(tinySpec("evict-0"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("evicted entry still served from cache")
	}
}

// TestHTTPAPI drives the full handler surface over httptest: submit,
// status, events stream, result (JSON and text), repeat-submit cache
// hit, cancel, stats, health.
func TestHTTPAPI(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specJSON := `{"name":"http-roundtrip","sim_time_us":1e6,"stations":[{"count":2}]}`
	body := fmt.Sprintf(`{"spec":%s,"reps":3}`, specJSON)

	// Submit.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" || !strings.HasPrefix(sub.Key, "sha256:") {
		t.Fatalf("submit: code=%d resp=%+v", resp.StatusCode, sub)
	}

	// Events: stream to terminal state.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type %q", ct)
	}
	var events []Event
	dec := json.NewDecoder(resp.Body)
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			break
		}
		events = append(events, e)
	}
	resp.Body.Close()
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	// The stream may join at any point of the run, so intermediate
	// progress lines are best-effort; the terminal line is not.
	last := events[len(events)-1]
	if last.State != StateDone || last.Done != 3 || last.Total != 3 {
		t.Fatalf("terminal event = %+v", last)
	}

	// Status.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateDone || st.Scenario != "http-roundtrip" {
		t.Fatalf("status = %+v", st)
	}

	// Result, JSON and text forms.
	getBody := func(url string) (int, []byte, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes(), resp.Header.Get("Content-Type")
	}
	code, resJSON, ct := getBody(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("result: code=%d ct=%q", code, ct)
	}
	var res Result
	if err := json.Unmarshal(resJSON, &res); err != nil {
		t.Fatal(err)
	}
	code, text, _ := getBody(ts.URL + "/v1/jobs/" + sub.ID + "/result?format=text")
	if code != http.StatusOK || string(text) != res.Text {
		t.Fatalf("text result: code=%d, text/JSON mismatch", code)
	}

	// Re-submit: cached, same bytes.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub2 SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sub2)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sub2.Cached {
		t.Fatalf("resubmit: code=%d resp=%+v, want 200 cached", resp.StatusCode, sub2)
	}
	_, resJSON2, _ := getBody(ts.URL + "/v1/jobs/" + sub2.ID + "/result")
	if !bytes.Equal(resJSON, resJSON2) {
		t.Error("cached HTTP result differs byte-wise from computed one")
	}

	// List: both jobs, in order.
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Status
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 2 || list[0].ID != sub.ID || list[1].ID != sub2.ID {
		t.Fatalf("list = %+v", list)
	}

	// Stats + health.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.Submissions != 2 || stats.CacheHits != 1 || stats.CacheEntries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	code, health, _ := getBody(ts.URL + "/healthz")
	if code != http.StatusOK || strings.TrimSpace(string(health)) != "ok" {
		t.Fatalf("healthz: %d %q", code, health)
	}

	// Error paths.
	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/v1/jobs/nope", "", http.StatusNotFound},
		{"GET", "/v1/jobs/nope/result", "", http.StatusNotFound},
		{"POST", "/v1/jobs", `{"spec":{"name":"x"}}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `not json`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"reps":3}`, http.StatusBadRequest},
		{"POST", "/v1/jobs", `{"spec":` + specJSON + `,"reps":-1}`, http.StatusBadRequest},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: code %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestHTTPCancel cancels a queued job over the API.
func TestHTTPCancel(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	s.testHoldRun = func(*Job) {
		running <- struct{}{}
		<-release
	}
	defer s.Close()
	defer close(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, _, _, err := s.Submit(tinySpec("blocker"), 2); err != nil {
		t.Fatal(err)
	}
	<-running
	j, _, _, err := s.Submit(tinySpec("to-cancel"), 2)
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID(), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateCancelled {
		t.Fatalf("after DELETE: %+v", st)
	}
	// Its result endpoint reports Gone.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + j.ID() + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("result of cancelled job: code %d, want 410", resp.StatusCode)
	}
}

// TestParallelRepWorkersBitIdentical pins the determinism guarantee at
// the serving layer: RepWorkers=1 and RepWorkers=4 must serve the same
// bytes.
func TestParallelRepWorkersBitIdentical(t *testing.T) {
	spec := sweepSpec("parallel-identical")
	var results [][]byte
	for _, workers := range []int{1, 4} {
		s := mustNew(t, Config{RepWorkers: workers})
		j, _, _, err := s.Submit(spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		data, _, ok := j.Result()
		if !ok {
			t.Fatalf("workers=%d: no result: %+v", workers, j.Status())
		}
		results = append(results, data)
		s.Close()
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Error("serial and parallel rep pools served different bytes")
	}
}

// TestResubmitAfterQueuedCancel: a job cancelled while queued still
// occupies the in-flight slot until a worker dequeues it; a new
// identical submission must NOT coalesce onto that corpse — it must
// get a fresh job that actually runs.
func TestResubmitAfterQueuedCancel(t *testing.T) {
	s := mustNew(t, Config{Workers: 1})
	gate := make(chan struct{})
	running := make(chan struct{}, 16)
	s.testHoldRun = func(*Job) {
		running <- struct{}{}
		<-gate
	}
	defer s.Close()

	if _, _, _, err := s.Submit(tinySpec("blocker"), 2); err != nil {
		t.Fatal(err)
	}
	<-running // worker held; everything below stays queued

	spec := tinySpec("cancel-then-resubmit")
	j1, _, _, err := s.Submit(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	j1.Cancel()
	if st := j1.Status(); st.State != StateCancelled {
		t.Fatalf("after cancel: %s", st.State)
	}

	j2, cached, coalesced, err := s.Submit(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cached || coalesced || j2 == j1 {
		t.Fatalf("resubmission attached to the cancelled job: cached=%v coalesced=%v same=%v",
			cached, coalesced, j2 == j1)
	}
	close(gate)
	waitDone(t, j2)
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("resubmitted job: %+v", st)
	}
}

// TestJobRegistryBounded: beyond MaxJobs the oldest terminal jobs are
// evicted (404 afterwards), while live jobs are never touched.
func TestJobRegistryBounded(t *testing.T) {
	s := mustNew(t, Config{MaxJobs: 3})
	defer s.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		j, _, _, err := s.Submit(tinySpec(fmt.Sprintf("bounded-%d", i)), 2)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		ids = append(ids, j.ID())
	}
	if got := len(s.Jobs()); got != 3 {
		t.Fatalf("registry holds %d jobs, want 3", got)
	}
	for _, id := range ids[:2] {
		if _, ok := s.Job(id); ok {
			t.Errorf("job %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := s.Job(id); !ok {
			t.Errorf("job %s evicted too early", id)
		}
	}
	// The evicted jobs' results still come from the cache.
	_, cached, _, err := s.Submit(tinySpec("bounded-0"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Error("evicted job's study fell out of the result cache")
	}
}

// TestCacheByteBudget: the memory tier evicts by bytes as well as by
// entry count, but always retains the newest entry.
func TestCacheByteBudget(t *testing.T) {
	c, err := newCache(100, 1, "", nil) // 1-byte budget: any two entries overflow
	if err != nil {
		t.Fatal(err)
	}
	big := entry{key: "a", json: []byte(`{"x":1}`), text: "aaa"}
	c.put(big)
	if c.len() != 1 {
		t.Fatal("newest entry must survive even when oversized")
	}
	c.put(entry{key: "b", json: []byte(`{"y":2}`), text: "bbb"})
	if c.len() != 1 {
		t.Fatalf("byte budget not enforced: %d entries resident", c.len())
	}
	if _, _, ok := c.get("b"); !ok {
		t.Error("newest entry evicted instead of oldest")
	}
	if _, _, ok := c.get("a"); ok {
		t.Error("oldest entry survived a blown byte budget")
	}
}
