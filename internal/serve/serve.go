// Package serve turns the one-shot scenario runner into a long-lived
// service: an HTTP/JSON front end that accepts scenario.Spec
// submissions, runs them on a bounded asynchronous job queue backed by
// the deterministic internal/par worker pool, and exposes job status,
// streamed per-replication progress, and final aggregated results.
//
// Three properties make it safe to put in front of heavy traffic:
//
//   - Content addressing. A submission is keyed by
//     scenario.Fingerprint — a SHA-256 over the canonical (normalized)
//     spec plus the replication count. Equal keys mean bit-identical
//     results, so a repeated submission is answered from an in-memory
//     LRU cache (optionally persisted to disk) without re-simulation,
//     byte-for-byte identical to the first computed response.
//
//   - Coalescing. Concurrent submissions of the same key share one
//     queued job instead of queueing duplicates; every submitter polls
//     or streams the same job ID.
//
//   - Determinism. Jobs fan their replications across the par pool,
//     which returns results in input order whatever the worker count,
//     so a served result is bit-identical to the sim1901/plcbench CLI
//     on the same spec. Cached, coalesced and freshly computed
//     responses are indistinguishable.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// Config tunes a Server. The zero value is usable: every field has a
// default chosen for a small deployment.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it are rejected with ErrQueueFull (backpressure, not
	// unbounded memory). Default 64.
	QueueDepth int
	// Workers is the number of jobs run concurrently. Default 1: one
	// job at a time, each fanning its replications across RepWorkers.
	Workers int
	// RepWorkers is the par pool width each job fans its replications
	// across. Default GOMAXPROCS.
	RepWorkers int
	// CacheEntries bounds the in-memory result cache's entry count.
	// Default 128.
	CacheEntries int
	// CacheBytes bounds the in-memory result cache's total resident
	// bytes (results embed raw per-replication metrics, so entries vary
	// widely in size). Default 256 MiB.
	CacheBytes int
	// CacheDir, when non-empty, persists every computed result to
	// <CacheDir>/<hash>.json and consults it on memory misses, so a
	// restarted server still answers known studies without
	// re-simulation.
	CacheDir string
	// MaxReps bounds the replication count a single submission may
	// request. Default 10000.
	MaxReps int
	// MaxJobs bounds the job registry: once exceeded, the oldest
	// *terminal* jobs are evicted (queued and running jobs are never
	// touched), so a long-lived server's memory does not grow with its
	// submission count. Evicted IDs answer 404; their results live on
	// in the cache. Default 1024.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.RepWorkers <= 0 {
		c.RepWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxReps <= 0 {
		c.MaxReps = 10000
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// ErrQueueFull rejects a submission when the pending queue is at
// QueueDepth. Clients should back off and retry.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed rejects submissions after Close.
var ErrClosed = errors.New("serve: server closed")

// Counters are the server's monotonic event counts, exposed at
// /v1/stats.
type Counters struct {
	// Submissions counts every accepted POST (including cached and
	// coalesced answers).
	Submissions int64 `json:"submissions"`
	// CacheHits counts submissions answered from the in-memory cache;
	// DiskCacheHits the subset that was faulted in from CacheDir.
	CacheHits     int64 `json:"cache_hits"`
	DiskCacheHits int64 `json:"disk_cache_hits"`
	// Coalesced counts submissions that attached to an already queued
	// or running identical job.
	Coalesced int64 `json:"coalesced"`
	// Predictions counts POST /v1/predict calls answered (synchronous
	// model evaluations); PredictCacheHits the subset served from the
	// result cache without solving.
	Predictions      int64 `json:"predictions"`
	PredictCacheHits int64 `json:"predict_cache_hits"`
	// Campaigns counts accepted POST /v1/campaigns submissions;
	// CampaignCacheHits the subset answered whole from the cache, and
	// CampaignPointHits the individual grid points (replication
	// batches) a running campaign adopted from the cache instead of
	// simulating.
	Campaigns         int64 `json:"campaigns"`
	CampaignCacheHits int64 `json:"campaign_cache_hits"`
	CampaignPointHits int64 `json:"campaign_point_hits"`
	// Rejected counts submissions refused with ErrQueueFull.
	Rejected int64 `json:"rejected"`
	// Completed, Failed and Cancelled count terminal job outcomes.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
}

// Server owns the job queue, the result cache and the job registry.
// Create with New, mount Handler on an http.Server, Close to drain.
type Server struct {
	cfg   Config
	cache *cache

	ctx       context.Context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	closed   bool
	seq      int
	jobs     map[string]*Job // by ID; oldest terminal jobs pruned past MaxJobs
	order    []string        // IDs in submission order (listing)
	inflight map[string]*Job // fingerprint → queued/running job
	counters Counters

	queue chan *Job
	wg    sync.WaitGroup

	// testHoldRun, when set (tests only), is called by a worker after
	// dequeuing a job and before running it — a hook to hold the worker
	// so queue and coalescing states become deterministic.
	testHoldRun func(*Job)
}

// New starts a Server's workers and returns it ready to serve. It
// fails fast when CacheDir is configured but unusable (missing and
// uncreatable, or not writable) — a daemon asked to persist results
// must not silently run without persistence.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := newCache(cfg.CacheEntries, cfg.CacheBytes, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		ctx:       ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
		inflight:  make(map[string]*Job),
		queue:     make(chan *Job, cfg.QueueDepth),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Close stops accepting submissions, cancels queued and running jobs,
// and waits for the workers to drain. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.cancelAll()
	s.wg.Wait()
}

// Submit validates, fingerprints and admits one study. The returned
// job is freshly queued, an already in-flight identical job
// (coalesced=true), or an immediately-done job answered from the cache
// (cached=true). Errors: validation errors (bad spec or reps),
// ErrQueueFull, ErrClosed.
//
// Model-engine specs ride the same queue, but their replication count
// collapses to 1 before fingerprinting — analytic points are
// deterministic, so every reps value names the same study and hits the
// same cache entry (the one /v1/predict also reads and writes).
func (s *Server) Submit(spec scenario.Spec, reps int) (job *Job, cached, coalesced bool, err error) {
	if reps < 1 || reps > s.cfg.MaxReps {
		return nil, false, false, fmt.Errorf("serve: \"reps\" = %d outside 1–%d", reps, s.cfg.MaxReps)
	}
	compiled, err := scenario.Compile(spec)
	if err != nil {
		return nil, false, false, err
	}
	if compiled.Spec.Engine == scenario.EngineModel {
		reps = 1
	}
	key, err := scenario.Fingerprint(spec, reps)
	if err != nil {
		return nil, false, false, err
	}
	// The cache lookup — which may fault a result in from disk — runs
	// before the server lock, so slow I/O never stalls unrelated
	// handlers. The miss-then-computed race this opens (another
	// identical job completing in between) at worst recomputes a
	// bit-identical result.
	ent, disk, hit := s.cache.get(key)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, false, ErrClosed
	}
	s.counters.Submissions++

	if hit {
		s.counters.CacheHits++
		if disk {
			s.counters.DiskCacheHits++
		}
		j := s.newJobLocked(key, compiled, reps)
		j.completeFromCache(ent)
		return j, true, false, nil
	}
	// Coalesce onto an identical in-flight job — unless that job was
	// cancelled while queued (terminal but still occupying the slot
	// until a worker dequeues it); attaching there would answer a
	// valid submission with 410 Gone.
	if j, ok := s.inflight[key]; ok && !j.Status().State.Terminal() {
		s.counters.Coalesced++
		return j, false, true, nil
	}

	j := s.newJobLocked(key, compiled, reps)
	select {
	case s.queue <- j:
	default:
		// Undo the registration: the job was never admitted.
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.counters.Rejected++
		s.counters.Submissions--
		return nil, false, false, ErrQueueFull
	}
	s.inflight[key] = j
	return j, false, false, nil
}

// Predict answers a spec analytically, synchronously: the spec is
// forced onto the model engine, fingerprinted at reps=1, and served
// from the result cache when known — otherwise solved inline (tens of
// microseconds) and cached. No job is minted and the queue is never
// touched; the returned bytes are the same entry a model-engine Submit
// of the identical spec would produce, so the two paths share cache
// entries and the bit-identical guarantee. Errors: validation errors
// (specs the analytic model cannot express), ErrClosed.
func (s *Server) Predict(spec scenario.Spec) (resultJSON []byte, text string, cached bool, err error) {
	spec.Engine = scenario.EngineModel
	compiled, err := scenario.Compile(spec)
	if err != nil {
		return nil, "", false, err
	}
	key, err := scenario.Fingerprint(spec, 1)
	if err != nil {
		return nil, "", false, err
	}
	ent, disk, hit := s.cache.get(key)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, "", false, ErrClosed
	}
	s.counters.Predictions++
	if hit {
		s.counters.PredictCacheHits++
		if disk {
			s.counters.DiskCacheHits++
		}
		s.mu.Unlock()
		return ent.json, ent.text, true, nil
	}
	s.mu.Unlock()

	rep, err := scenario.Replications(compiled, 1, 1)
	if err != nil {
		return nil, "", false, err
	}
	ent, err = encodeResult(key, rep)
	if err != nil {
		return nil, "", false, err
	}
	s.cache.put(ent)
	return ent.json, ent.text, false, nil
}

// SubmitCampaign validates, expands, fingerprints and admits one
// campaign onto the same queue scenario jobs ride. The returned job is
// freshly queued, an already in-flight identical campaign
// (coalesced=true), or an immediately-done job answered from the
// campaign-level cache (cached=true). While running, the campaign
// additionally consults the cache per grid point and replication
// batch — the same scenario.Fingerprint keys individual submissions
// use — so partially overlapping campaigns, direct jobs and reruns all
// dedupe onto one another. Errors: validation errors (bad campaign
// spec, replication bound above MaxReps), ErrQueueFull, ErrClosed.
func (s *Server) SubmitCampaign(spec campaign.Spec) (job *Job, cached, coalesced bool, err error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, false, false, err
	}
	if cap := campaignRepCap(norm); cap > s.cfg.MaxReps {
		return nil, false, false, fmt.Errorf("serve: campaign %s requests up to %d reps per point, outside 1–%d",
			norm.Name, cap, s.cfg.MaxReps)
	}
	key, err := campaign.Fingerprint(norm)
	if err != nil {
		return nil, false, false, err
	}
	ent, disk, hit := s.cache.get(key)
	// Grid expansion is O(points) of JSON work; a cache-hit
	// resubmission of a large campaign must not pay it. The compile
	// therefore runs only on a miss, still outside the server lock.
	// (The miss-then-completed race wastes at worst one expansion.)
	var compiled *campaign.Compiled
	if !hit {
		compiled, err = campaign.Compile(norm)
		if err != nil {
			return nil, false, false, err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, false, ErrClosed
	}
	s.counters.Submissions++
	s.counters.Campaigns++

	if hit {
		s.counters.CacheHits++
		s.counters.CampaignCacheHits++
		if disk {
			s.counters.DiskCacheHits++
		}
		j := s.registerLocked(newCampaignJob(s.nextIDLocked("c"), key, &campaign.Compiled{Spec: norm}))
		j.completeFromCache(ent)
		return j, true, false, nil
	}
	if j, ok := s.inflight[key]; ok && !j.Status().State.Terminal() {
		s.counters.Coalesced++
		return j, false, true, nil
	}

	j := s.registerLocked(newCampaignJob(s.nextIDLocked("c"), key, compiled))
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.counters.Rejected++
		s.counters.Submissions--
		s.counters.Campaigns--
		return nil, false, false, ErrQueueFull
	}
	s.inflight[key] = j
	return j, false, false, nil
}

// campaignRepCap is the largest per-point replication count a campaign
// may reach (the fixed count, or the adaptive cap).
func campaignRepCap(s campaign.Spec) int {
	if s.Adaptive() {
		return s.MaxReps
	}
	return s.Reps
}

// newJobLocked registers a new scenario job; s.mu must be held.
func (s *Server) newJobLocked(key string, c *scenario.Compiled, reps int) *Job {
	return s.registerLocked(newJob(s.nextIDLocked("j"), key, c, reps))
}

// nextIDLocked mints the next job ID with the given kind prefix
// ("j" for scenario jobs, "c" for campaigns); s.mu must be held.
func (s *Server) nextIDLocked(prefix string) string {
	s.seq++
	return fmt.Sprintf("%s%d", prefix, s.seq)
}

// registerLocked adds a job to the registry and prunes it down to
// MaxJobs by evicting the oldest terminal jobs; s.mu must be held.
func (s *Server) registerLocked(j *Job) *Job {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) > s.cfg.MaxJobs {
		kept := s.order[:0]
		excess := len(s.order) - s.cfg.MaxJobs
		for _, id := range s.order {
			if excess > 0 && s.jobs[id].Status().State.Terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
	}
	return j
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Stats snapshots the counters plus current cache occupancy.
func (s *Server) Stats() (Counters, int) {
	s.mu.Lock()
	c := s.counters
	s.mu.Unlock()
	return c, s.cache.len()
}

// worker consumes the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.testHoldRun != nil {
			s.testHoldRun(j)
		}
		s.runJob(j)
	}
}

// runJob executes one dequeued job to a terminal state.
func (s *Server) runJob(j *Job) {
	ctx, ok := j.start(s.ctx)
	if !ok {
		// Cancelled while queued; nothing ran.
		s.finishJob(j, func() { s.counters.Cancelled++ })
		return
	}
	if j.camp != nil {
		s.runCampaignJob(j, ctx)
		return
	}
	rep, err := scenario.ReplicationsOpts(j.compiled, j.reps, s.cfg.RepWorkers, scenario.Options{
		Context:  ctx,
		Progress: j.setProgress,
	})
	switch {
	case errors.Is(err, context.Canceled):
		// Cancellation proper. A genuine replication error that merely
		// coincides with cancellation takes the failed branch below:
		// MapCtx preserves the lowest-index real error.
		j.finish(StateCancelled, nil, err.Error())
		s.finishJob(j, func() { s.counters.Cancelled++ })
	case err != nil:
		j.finish(StateFailed, nil, err.Error())
		s.finishJob(j, func() { s.counters.Failed++ })
	default:
		ent, err := encodeResult(j.key, rep)
		if err != nil {
			j.finish(StateFailed, nil, err.Error())
			s.finishJob(j, func() { s.counters.Failed++ })
			return
		}
		s.cache.put(ent)
		j.finish(StateDone, &ent, "")
		s.finishJob(j, func() { s.counters.Completed++ })
	}
}

// runCampaignJob executes one dequeued campaign job: the grid runs
// through campaign.Run against the server's content-addressed cache, so
// every grid point and replication batch the cache already knows is
// adopted instead of simulated, and everything computed is published
// for future campaigns and direct submissions alike.
func (s *Server) runCampaignJob(j *Job, ctx context.Context) {
	rep, err := campaign.Run(j.camp, campaign.Opts{
		Workers:   s.cfg.RepWorkers,
		Context:   ctx,
		Cache:     (*pointCache)(s),
		Progress:  j.setProgress,
		PointDone: j.setPoints,
	})
	switch {
	case errors.Is(err, context.Canceled):
		j.finish(StateCancelled, nil, err.Error())
		s.finishJob(j, func() { s.counters.Cancelled++ })
	case err != nil:
		j.finish(StateFailed, nil, err.Error())
		s.finishJob(j, func() { s.counters.Failed++ })
	default:
		ent, err := encodeCampaignResult(j.key, rep)
		if err != nil {
			j.finish(StateFailed, nil, err.Error())
			s.finishJob(j, func() { s.counters.Failed++ })
			return
		}
		s.cache.put(ent)
		j.finish(StateDone, &ent, "")
		s.finishJob(j, func() { s.counters.Completed++ })
	}
}

// pointCache adapts the server's result cache to campaign.Cache: grid
// points are read and written as the very entries scenario jobs use
// (same fingerprints, same Result envelope), so a campaign point, a
// direct submission of the expanded spec and a rerun all share bytes.
type pointCache Server

func (c *pointCache) Get(key string) (*scenario.Report, bool) {
	s := (*Server)(c)
	ent, disk, ok := s.cache.get(key)
	if !ok {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(ent.json, &res); err != nil || res.Report == nil {
		return nil, false
	}
	s.mu.Lock()
	s.counters.CampaignPointHits++
	if disk {
		s.counters.DiskCacheHits++
	}
	s.mu.Unlock()
	return res.Report, true
}

func (c *pointCache) Put(key string, rep *scenario.Report) {
	s := (*Server)(c)
	ent, err := encodeResult(key, rep)
	if err != nil {
		return // unreachable: reports the runner builds always marshal
	}
	s.cache.put(ent)
}

// finishJob clears the in-flight slot and bumps a counter under s.mu.
func (s *Server) finishJob(j *Job, count func()) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	count()
	s.mu.Unlock()
}
