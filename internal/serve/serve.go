// Package serve turns the one-shot scenario runner into a long-lived
// service: an HTTP/JSON front end that accepts scenario.Spec
// submissions, runs them on a bounded asynchronous job queue backed by
// the deterministic internal/par worker pool, and exposes job status,
// streamed per-replication progress, and final aggregated results.
//
// Three properties make it safe to put in front of heavy traffic:
//
//   - Content addressing. A submission is keyed by
//     scenario.Fingerprint — a SHA-256 over the canonical (normalized)
//     spec plus the replication count. Equal keys mean bit-identical
//     results, so a repeated submission is answered from an in-memory
//     LRU cache (optionally persisted to disk) without re-simulation,
//     byte-for-byte identical to the first computed response.
//
//   - Coalescing. Concurrent submissions of the same key share one
//     queued job instead of queueing duplicates; every submitter polls
//     or streams the same job ID.
//
//   - Determinism. Jobs fan their replications across the par pool,
//     which returns results in input order whatever the worker count,
//     so a served result is bit-identical to the sim1901/plcbench CLI
//     on the same spec. Cached, coalesced and freshly computed
//     responses are indistinguishable.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/scenario"
)

// Config tunes a Server. The zero value is usable: every field has a
// default chosen for a small deployment.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it are rejected with ErrQueueFull (backpressure, not
	// unbounded memory). Default 64.
	QueueDepth int
	// Workers is the number of jobs run concurrently. Default 1: one
	// job at a time, each fanning its replications across RepWorkers.
	Workers int
	// RepWorkers is the par pool width each job fans its replications
	// across. Default GOMAXPROCS.
	RepWorkers int
	// CacheEntries bounds the in-memory result cache's entry count.
	// Default 128.
	CacheEntries int
	// CacheBytes bounds the in-memory result cache's total resident
	// bytes (results embed raw per-replication metrics, so entries vary
	// widely in size). Default 256 MiB.
	CacheBytes int
	// CacheDir, when non-empty, persists every computed result to
	// <CacheDir>/<hash>.json and consults it on memory misses, so a
	// restarted server still answers known studies without
	// re-simulation.
	CacheDir string
	// MaxReps bounds the replication count a single submission may
	// request. Default 10000.
	MaxReps int
	// MaxJobs bounds the job registry: once exceeded, the oldest
	// *terminal* jobs are evicted (queued and running jobs are never
	// touched), so a long-lived server's memory does not grow with its
	// submission count. Evicted IDs answer 404; their results live on
	// in the cache. Default 1024.
	MaxJobs int
	// JournalDir, when non-empty, enables the job journal: an
	// append-only NDJSON write-ahead log under <JournalDir>/journal.ndjson
	// recording every accepted submission (fsynced before the accept is
	// acknowledged) and every terminal transition. On startup the
	// server replays accepts without a terminal record back onto the
	// queue, so a crashed or killed daemon picks its unfinished work
	// back up — and because every study is content-addressed, replayed
	// work the disk cache already knows completes without simulation.
	JournalDir string
	// JobTimeout, when positive, bounds each job's running time: a job
	// still unfinished after it is cancelled into StateTimedOut. It is
	// also the cap on per-request "timeout_s" values. Zero means no
	// deadline.
	JobTimeout time.Duration

	// faults, when non-nil, injects failures for the robustness tests
	// (see Faults). Unexported on purpose: only this package's tests
	// can set it, production builds always run with nil.
	faults *Faults
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.RepWorkers <= 0 {
		c.RepWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxReps <= 0 {
		c.MaxReps = 10000
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// ErrQueueFull rejects a submission when the pending queue is at
// QueueDepth. Clients should back off and retry.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed rejects submissions after Close.
var ErrClosed = errors.New("serve: server closed")

// Counters are the server's monotonic event counts, exposed at
// /v1/stats. They are a compatibility view derived in Stats() from the
// obs metric registry (the /metrics truth source), so the two surfaces
// report the same events by construction.
type Counters struct {
	// Submissions counts every accepted POST (including cached and
	// coalesced answers).
	Submissions int64 `json:"submissions"`
	// CacheHits counts submissions answered from the in-memory cache;
	// DiskCacheHits the subset that was faulted in from CacheDir.
	CacheHits     int64 `json:"cache_hits"`
	DiskCacheHits int64 `json:"disk_cache_hits"`
	// Coalesced counts submissions that attached to an already queued
	// or running identical job.
	Coalesced int64 `json:"coalesced"`
	// Predictions counts POST /v1/predict calls answered (synchronous
	// model evaluations); PredictCacheHits the subset served from the
	// result cache without solving.
	Predictions      int64 `json:"predictions"`
	PredictCacheHits int64 `json:"predict_cache_hits"`
	// Campaigns counts accepted POST /v1/campaigns submissions;
	// CampaignCacheHits the subset answered whole from the cache, and
	// CampaignPointHits the individual grid points (replication
	// batches) a running campaign adopted from the cache instead of
	// simulating.
	Campaigns         int64 `json:"campaigns"`
	CampaignCacheHits int64 `json:"campaign_cache_hits"`
	CampaignPointHits int64 `json:"campaign_point_hits"`
	// PredictCoalesced counts /v1/predict cache misses that attached to
	// an identical in-flight solve instead of solving again.
	PredictCoalesced int64 `json:"predict_coalesced"`
	// Rejected counts submissions refused with ErrQueueFull.
	Rejected int64 `json:"rejected"`
	// Completed, Failed, Cancelled and TimedOut count terminal job
	// outcomes (TimedOut: jobs cancelled by their deadline).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	TimedOut  int64 `json:"timed_out"`
	// Panics counts jobs that failed because a replication (or the job
	// itself) panicked. The panic is isolated: it fails only its job,
	// with the stack in the job error.
	Panics int64 `json:"panics"`
	// Replayed counts jobs recovered from the journal at startup
	// (re-queued, or completed instantly from the result cache).
	Replayed int64 `json:"journal_replayed"`
	// RegistryOverflow counts registrations that left the job registry
	// above MaxJobs because every resident job was still queued or
	// running — the bound only evicts terminal jobs, so a saturated
	// registry grows; this counter is how operators see it happening.
	RegistryOverflow int64 `json:"registry_overflow"`
	// JournalWriteFailures and DiskCacheWriteFailures count dropped
	// journal and disk-cache writes (degraded durability; /readyz turns
	// unready after repeated consecutive failures).
	JournalWriteFailures   int64 `json:"journal_write_failures"`
	DiskCacheWriteFailures int64 `json:"disk_cache_write_failures"`
}

// Server owns the job queue, the result cache, the job registry and —
// when configured — the crash-recovery journal. Create with New, mount
// Handler on an http.Server, Drain and/or Close to stop.
type Server struct {
	cfg     Config
	cache   *cache
	journal *journal // nil without JournalDir
	faults  *Faults  // nil in production
	metrics *metrics // event counters, latency histograms, gauges

	ctx       context.Context
	cancelAll context.CancelFunc

	replaying atomic.Bool // journal replay still in progress
	replayWG  sync.WaitGroup

	mu         sync.Mutex
	closed     bool
	abandoning bool // Drain gave up: suppress terminal journal records
	abandoned  int  // jobs cancelled during abandonment
	seq        int
	jobs       map[string]*Job // by ID; oldest terminal jobs pruned past MaxJobs
	order      []string        // IDs in submission order (listing)
	inflight   map[string]*Job // fingerprint → queued/running job
	predict    map[string]*predictFlight
	svcRuns    int64         // jobs that actually executed (service-time sample size)
	svcTotal   time.Duration // summed service time of those jobs

	queue chan *Job
	wg    sync.WaitGroup

	// testHoldRun, when set (tests only), is called by a worker after
	// dequeuing a job and before running it — a hook to hold the worker
	// so queue and coalescing states become deterministic.
	testHoldRun func(*Job)
}

// predictFlight is one in-flight /v1/predict solve; concurrent misses
// of the same key wait on done instead of solving again.
type predictFlight struct {
	done chan struct{}
	ent  entry
	err  error
}

// New starts a Server's workers and returns it ready to serve. It
// fails fast when CacheDir or JournalDir is configured but unusable
// (missing and uncreatable, or not writable) — a daemon asked to
// persist results or journal jobs must not silently run without. With
// JournalDir set, unfinished jobs from the previous run replay onto
// the queue in the background; /readyz reports 503 until the replay
// has re-admitted them all.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := newCache(cfg.CacheEntries, cfg.CacheBytes, cfg.CacheDir, cfg.faults)
	if err != nil {
		return nil, err
	}
	var (
		jl      *journal
		pending []journalRecord
	)
	if cfg.JournalDir != "" {
		jl, pending, err = openJournal(cfg.JournalDir, cfg.faults)
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		journal:   jl,
		faults:    cfg.faults,
		ctx:       ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
		inflight:  make(map[string]*Job),
		predict:   make(map[string]*predictFlight),
		queue:     make(chan *Job, cfg.QueueDepth),
	}
	s.metrics = newMetrics(s)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if len(pending) > 0 {
		s.replaying.Store(true)
		s.replayWG.Add(1)
		go s.replay(pending)
	}
	return s, nil
}

// Close stops accepting submissions, cancels queued and running jobs,
// and waits for the workers to drain. Safe to call more than once.
// Jobs cancelled here reach a terminal state and are journaled as
// such; to instead leave unfinished jobs recoverable, Drain first.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
	} else {
		s.closed = true
		close(s.queue)
		s.mu.Unlock()
		s.cancelAll()
	}
	s.wg.Wait()
	s.replayWG.Wait()
	if s.journal != nil {
		s.journal.close()
	}
}

// Drain stops admissions and lets queued and running jobs finish for
// up to timeout. Jobs still unfinished then are cancelled with their
// journal records deliberately left non-terminal, so a restart replays
// them — the graceful half of crash recovery. It returns how many of
// the jobs pending at the call finished (drained) versus were given up
// on (abandoned). timeout ≤ 0 abandons immediately. Call Close
// afterwards to release the remaining resources.
func (s *Server) Drain(timeout time.Duration) (drained, abandoned int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return 0, 0
	}
	s.closed = true
	close(s.queue)
	pending := 0
	for _, id := range s.order {
		if !s.jobs[id].Status().State.Terminal() {
			pending++
		}
	}
	s.mu.Unlock()
	s.replayWG.Wait() // replay observes closed and stops re-admitting

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	if timeout > 0 {
		select {
		case <-workersDone:
		case <-time.After(timeout):
		}
	}
	select {
	case <-workersDone:
	default:
		s.mu.Lock()
		s.abandoning = true
		s.mu.Unlock()
		s.cancelAll()
		<-workersDone
	}
	s.mu.Lock()
	abandoned = s.abandoned
	s.mu.Unlock()
	return pending - abandoned, abandoned
}

// Submit validates, fingerprints and admits one study. The returned
// job is freshly queued, an already in-flight identical job
// (coalesced=true), or an immediately-done job answered from the cache
// (cached=true). Errors: validation errors (bad spec or reps),
// ErrQueueFull, ErrClosed.
//
// Model-engine specs ride the same queue, but their replication count
// collapses to 1 before fingerprinting — analytic points are
// deterministic, so every reps value names the same study and hits the
// same cache entry (the one /v1/predict also reads and writes).
func (s *Server) Submit(spec scenario.Spec, reps int) (job *Job, cached, coalesced bool, err error) {
	return s.SubmitTimeout(spec, reps, 0)
}

// effectiveTimeout resolves a per-request deadline against the server
// limit: requests without one inherit JobTimeout, requests above it
// are capped to it. Zero on both sides means no deadline.
func (c Config) effectiveTimeout(req time.Duration) time.Duration {
	if req <= 0 || (c.JobTimeout > 0 && req > c.JobTimeout) {
		return c.JobTimeout
	}
	return req
}

// SubmitTimeout is Submit with a per-request deadline: the job is
// cancelled into StateTimedOut if it runs longer than timeout
// (capped at Config.JobTimeout; ≤ 0 inherits it).
func (s *Server) SubmitTimeout(spec scenario.Spec, reps int, timeout time.Duration) (job *Job, cached, coalesced bool, err error) {
	if reps < 1 || reps > s.cfg.MaxReps {
		return nil, false, false, fmt.Errorf("serve: \"reps\" = %d outside 1–%d", reps, s.cfg.MaxReps)
	}
	compiled, err := scenario.Compile(spec)
	if err != nil {
		return nil, false, false, err
	}
	if compiled.Spec.Engine == scenario.EngineModel {
		reps = 1
	}
	key, err := scenario.Fingerprint(spec, reps)
	if err != nil {
		return nil, false, false, err
	}
	// The canonical spec bytes the journal needs: marshal the compiled
	// (normalized) spec up front so the admission path below never
	// fails on it.
	var canon json.RawMessage
	if s.journal != nil {
		if canon, err = json.Marshal(compiled.Spec); err != nil {
			return nil, false, false, fmt.Errorf("serve: canonicalize spec: %w", err)
		}
	}
	// The cache lookup — which may fault a result in from disk — runs
	// before the server lock, so slow I/O never stalls unrelated
	// handlers. The miss-then-computed race this opens (another
	// identical job completing in between) at worst recomputes a
	// bit-identical result.
	ent, disk, hit := s.cache.get(key)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, false, ErrClosed
	}

	if hit {
		s.metrics.subScenario.Inc()
		s.metrics.cacheHits.Inc()
		if disk {
			s.metrics.diskCacheHits.Inc()
		}
		j := s.newJobLocked(key, compiled, reps)
		j.completeFromCache(ent)
		s.mu.Unlock()
		s.observeE2E(j)
		return j, true, false, nil
	}
	// Coalesce onto an identical in-flight job — unless that job was
	// cancelled while queued (terminal but still occupying the slot
	// until a worker dequeues it); attaching there would answer a
	// valid submission with 410 Gone.
	if j, ok := s.inflight[key]; ok && !j.Status().State.Terminal() {
		s.metrics.subScenario.Inc()
		s.metrics.coalesced.Inc()
		s.mu.Unlock()
		return j, false, true, nil
	}

	j := s.newJobLocked(key, compiled, reps)
	j.timeout = s.cfg.effectiveTimeout(timeout)
	select {
	case s.queue <- j:
		s.metrics.subScenario.Inc()
		j.trace.Mark(traceQueued)
	default:
		// Undo the registration: the job was never admitted (nothing
		// was counted as a submission, only as a rejection).
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.metrics.rejected.Inc()
		s.mu.Unlock()
		return nil, false, false, ErrQueueFull
	}
	s.inflight[key] = j
	if s.journal != nil {
		j.seq = s.journal.next()
	}
	s.mu.Unlock()
	// Journal the accept outside the server lock (it fsyncs). The job
	// may already be running; if it finishes before this lands, the
	// journal collapses the accept/end pair to nothing.
	if s.journal != nil {
		s.journal.accept(journalRecord{
			Seq: j.seq, Op: "accept", Kind: "scenario", Key: key,
			Spec: canon, Reps: reps, TimeoutS: j.timeout.Seconds(),
		})
	}
	return j, false, false, nil
}

// Predict answers a spec analytically, synchronously: the spec is
// forced onto the model engine, fingerprinted at reps=1, and served
// from the result cache when known — otherwise solved inline (tens of
// microseconds) and cached. No job is minted and the queue is never
// touched; the returned bytes are the same entry a model-engine Submit
// of the identical spec would produce, so the two paths share cache
// entries and the bit-identical guarantee. Concurrent misses of the
// same key coalesce onto one solve: the first becomes the leader, the
// rest wait on its flight and return its bytes (counted as
// predict_coalesced). Errors: validation errors (specs the analytic
// model cannot express), ErrClosed.
func (s *Server) Predict(spec scenario.Spec) (resultJSON []byte, text string, cached bool, err error) {
	spec.Engine = scenario.EngineModel
	compiled, err := scenario.Compile(spec)
	if err != nil {
		return nil, "", false, err
	}
	key, err := scenario.Fingerprint(spec, 1)
	if err != nil {
		return nil, "", false, err
	}
	ent, disk, hit := s.cache.get(key)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, "", false, ErrClosed
	}
	s.metrics.predictions.Inc()
	if hit {
		s.metrics.predictCacheHits.Inc()
		if disk {
			s.metrics.diskCacheHits.Inc()
		}
		s.mu.Unlock()
		return ent.json, ent.text, true, nil
	}
	if fl, ok := s.predict[key]; ok {
		// An identical solve is in flight; wait for its result instead
		// of solving again. The leader's outcome (entry or error) is
		// published before done closes.
		s.metrics.predictCoalesced.Inc()
		s.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, "", false, fl.err
		}
		return fl.ent.json, fl.ent.text, false, nil
	}
	fl := &predictFlight{done: make(chan struct{})}
	s.predict[key] = fl
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.predict, key)
		s.mu.Unlock()
		close(fl.done)
	}()
	if f := s.faults; f != nil && f.PredictSolve != nil {
		f.PredictSolve()
	}
	solveStart := obs.Now()
	rep, err := scenario.Replications(compiled, 1, 1)
	if err != nil {
		fl.err = err
		return nil, "", false, err
	}
	ent, err = encodeResult(key, rep)
	if err != nil {
		fl.err = err
		return nil, "", false, err
	}
	s.metrics.predictSolve.Observe(obs.Since(solveStart).Seconds())
	s.cache.put(ent)
	fl.ent = ent
	return ent.json, ent.text, false, nil
}

// SubmitCampaign validates, expands, fingerprints and admits one
// campaign onto the same queue scenario jobs ride. The returned job is
// freshly queued, an already in-flight identical campaign
// (coalesced=true), or an immediately-done job answered from the
// campaign-level cache (cached=true). While running, the campaign
// additionally consults the cache per grid point and replication
// batch — the same scenario.Fingerprint keys individual submissions
// use — so partially overlapping campaigns, direct jobs and reruns all
// dedupe onto one another. Errors: validation errors (bad campaign
// spec, replication bound above MaxReps), ErrQueueFull, ErrClosed.
func (s *Server) SubmitCampaign(spec campaign.Spec) (job *Job, cached, coalesced bool, err error) {
	return s.SubmitCampaignTimeout(spec, 0)
}

// SubmitCampaignTimeout is SubmitCampaign with a per-request deadline
// (capped at Config.JobTimeout; ≤ 0 inherits it).
func (s *Server) SubmitCampaignTimeout(spec campaign.Spec, timeout time.Duration) (job *Job, cached, coalesced bool, err error) {
	norm, err := spec.Normalized()
	if err != nil {
		return nil, false, false, err
	}
	if cap := campaignRepCap(norm); cap > s.cfg.MaxReps {
		return nil, false, false, fmt.Errorf("serve: campaign %s requests up to %d reps per point, outside 1–%d",
			norm.Name, cap, s.cfg.MaxReps)
	}
	key, err := campaign.Fingerprint(norm)
	if err != nil {
		return nil, false, false, err
	}
	var canon json.RawMessage
	if s.journal != nil {
		if canon, err = json.Marshal(norm); err != nil {
			return nil, false, false, fmt.Errorf("serve: canonicalize campaign: %w", err)
		}
	}
	ent, disk, hit := s.cache.get(key)
	// Grid expansion is O(points) of JSON work; a cache-hit
	// resubmission of a large campaign must not pay it. The compile
	// therefore runs only on a miss, still outside the server lock.
	// (The miss-then-completed race wastes at worst one expansion.)
	var compiled *campaign.Compiled
	if !hit {
		compiled, err = campaign.Compile(norm)
		if err != nil {
			return nil, false, false, err
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, false, ErrClosed
	}
	if hit {
		s.metrics.subCampaign.Inc()
		s.metrics.cacheHits.Inc()
		s.metrics.campaignCacheHits.Inc()
		if disk {
			s.metrics.diskCacheHits.Inc()
		}
		j := s.registerLocked(newCampaignJob(s.nextIDLocked("c"), key, &campaign.Compiled{Spec: norm}))
		j.completeFromCache(ent)
		s.mu.Unlock()
		s.observeE2E(j)
		return j, true, false, nil
	}
	if j, ok := s.inflight[key]; ok && !j.Status().State.Terminal() {
		s.metrics.subCampaign.Inc()
		s.metrics.coalesced.Inc()
		s.mu.Unlock()
		return j, false, true, nil
	}

	j := s.registerLocked(newCampaignJob(s.nextIDLocked("c"), key, compiled))
	j.timeout = s.cfg.effectiveTimeout(timeout)
	select {
	case s.queue <- j:
		s.metrics.subCampaign.Inc()
		j.trace.Mark(traceQueued)
	default:
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.metrics.rejected.Inc()
		s.mu.Unlock()
		return nil, false, false, ErrQueueFull
	}
	s.inflight[key] = j
	if s.journal != nil {
		j.seq = s.journal.next()
	}
	s.mu.Unlock()
	if s.journal != nil {
		s.journal.accept(journalRecord{
			Seq: j.seq, Op: "accept", Kind: "campaign", Key: key,
			Campaign: canon, TimeoutS: j.timeout.Seconds(),
		})
	}
	return j, false, false, nil
}

// campaignRepCap is the largest per-point replication count a campaign
// may reach (the fixed count, or the adaptive cap).
func campaignRepCap(s campaign.Spec) int {
	if s.Adaptive() {
		return s.MaxReps
	}
	return s.Reps
}

// newJobLocked registers a new scenario job; s.mu must be held.
func (s *Server) newJobLocked(key string, c *scenario.Compiled, reps int) *Job {
	return s.registerLocked(newJob(s.nextIDLocked("j"), key, c, reps))
}

// nextIDLocked mints the next job ID with the given kind prefix
// ("j" for scenario jobs, "c" for campaigns); s.mu must be held.
func (s *Server) nextIDLocked(prefix string) string {
	s.seq++
	return fmt.Sprintf("%s%d", prefix, s.seq)
}

// registerLocked adds a job to the registry and prunes it down to
// MaxJobs by evicting the oldest terminal jobs; s.mu must be held.
// When every resident job is still queued or running nothing can be
// evicted and the registry stays above the bound — counted as
// registry_overflow so operators can see the pressure.
func (s *Server) registerLocked(j *Job) *Job {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) > s.cfg.MaxJobs {
		kept := s.order[:0]
		excess := len(s.order) - s.cfg.MaxJobs
		for _, id := range s.order {
			if excess > 0 && s.jobs[id].Status().State.Terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
			kept = append(kept, id)
		}
		s.order = kept
		if excess > 0 {
			s.metrics.registryOverflow.Inc()
		}
	}
	return j
}

// Job returns a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Stats snapshots the counters plus current cache occupancy. The
// Counters struct is derived from the obs metric registry — the same
// atomics GET /metrics renders — so /v1/stats and /metrics cannot
// disagree about an event count. Journal and disk-cache write-failure
// totals are read from their owners directly, exactly as the registry's
// CounterFunc views do.
func (s *Server) Stats() (Counters, int) {
	m := s.metrics
	c := Counters{
		Submissions:       int64(m.subScenario.Value() + m.subCampaign.Value()),
		CacheHits:         int64(m.cacheHits.Value()),
		DiskCacheHits:     int64(m.diskCacheHits.Value()),
		Coalesced:         int64(m.coalesced.Value()),
		Predictions:       int64(m.predictions.Value()),
		PredictCacheHits:  int64(m.predictCacheHits.Value()),
		Campaigns:         int64(m.subCampaign.Value()),
		CampaignCacheHits: int64(m.campaignCacheHits.Value()),
		CampaignPointHits: int64(m.campaignPointHits.Value()),
		PredictCoalesced:  int64(m.predictCoalesced.Value()),
		Rejected:          int64(m.rejected.Value()),
		Completed:         m.finishedCount(StateDone),
		Failed:            m.finishedCount(StateFailed),
		Cancelled:         m.finishedCount(StateCancelled),
		TimedOut:          m.finishedCount(StateTimedOut),
		Panics:            int64(m.panics.Value()),
		Replayed:          int64(m.replayed.Value()),
		RegistryOverflow:  int64(m.registryOverflow.Value()),
	}
	if s.journal != nil {
		_, total := s.journal.failures()
		c.JournalWriteFailures = total
	}
	_, c.DiskCacheWriteFailures = s.cache.diskFailures()
	return c, s.cache.len()
}

// Ready reports whether the server should receive traffic, and why not
// when it should not. It is the /readyz truth source: unready while
// the journal replay is still re-admitting recovered jobs, while the
// queue is saturated (a submission now would be rejected), and after
// degradedAfter consecutive journal or disk-cache write failures
// (durability is gone even though serving still works). Liveness is a
// separate, always-200 question — /healthz.
func (s *Server) Ready() (ok bool, reason string) {
	if s.replaying.Load() {
		return false, "journal replay in progress"
	}
	s.mu.Lock()
	closed := s.closed
	queued := len(s.queue)
	s.mu.Unlock()
	if closed {
		return false, "server closed"
	}
	if queued >= s.cfg.QueueDepth {
		return false, "job queue saturated"
	}
	if s.journal != nil {
		if consec, _ := s.journal.failures(); consec >= degradedAfter {
			return false, fmt.Sprintf("journal degraded: %d consecutive write failures", consec)
		}
	}
	if consec, _ := s.cache.diskFailures(); consec >= degradedAfter {
		return false, fmt.Sprintf("disk cache degraded: %d consecutive write failures", consec)
	}
	return true, ""
}

// degradedAfter is the consecutive write-failure count at which a
// journal or disk cache flips /readyz to 503. A single failure may be
// transient; three in a row is a full disk.
const degradedAfter = 3

// RetryAfter estimates how long a rejected submitter should wait before
// retrying, from the observed mean job service time and the current
// queue depth spread across the workers. Clamped to [1s, 10min]; with
// no service-time sample yet the floor applies.
func (s *Server) RetryAfter() time.Duration {
	s.mu.Lock()
	runs, total := s.svcRuns, s.svcTotal
	queued := len(s.queue)
	s.mu.Unlock()
	est := time.Second
	if runs > 0 && queued > 0 {
		mean := total / time.Duration(runs)
		est = time.Duration(math.Ceil(float64(mean)*float64(queued)/float64(s.cfg.Workers)/float64(time.Second))) * time.Second
	}
	if est < time.Second {
		est = time.Second
	}
	if est > 10*time.Minute {
		est = 10 * time.Minute
	}
	return est
}

// worker consumes the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.testHoldRun != nil {
			s.testHoldRun(j)
		}
		s.runJob(j)
	}
}

// runJob executes one dequeued job to a terminal state. A panic
// anywhere in the job's execution — a replication, a progress callback,
// result encoding — is recovered here (or inside the par pool, which
// converts worker panics to *par.PanicError) and fails only this job;
// the worker goroutine and every other job survive.
func (s *Server) runJob(j *Job) {
	started := obs.Now() // operational timing only; never feeds results
	defer func() {
		if v := recover(); v != nil {
			err := &par.PanicError{Value: v, Stack: debug.Stack()}
			j.finish(StateFailed, nil, err.Error())
			s.finishJob(j, StateFailed, obs.Since(started), true)
		}
	}()
	ctx, ok := j.start(s.ctx)
	if !ok {
		// Cancelled while queued; nothing ran.
		s.finishJob(j, StateCancelled, 0, false)
		return
	}
	if wait, ok := j.trace.Between(traceQueued, traceRunning); ok {
		s.metrics.queueWait.Observe(wait.Seconds())
	}
	var (
		ent entry
		err error
	)
	if j.camp != nil {
		ent, err = s.runCampaignJob(j, ctx)
	} else {
		var rep *scenario.Report
		rep, err = scenario.ReplicationsOpts(j.compiled, j.reps, s.cfg.RepWorkers, scenario.Options{
			Context:  ctx,
			Progress: s.progressFn(j),
		})
		if err == nil {
			ent, err = encodeResult(j.key, rep)
		}
	}
	svc := obs.Since(started)
	state, panicked := classify(ctx, err)
	if err != nil {
		j.finish(state, nil, err.Error())
		s.finishJob(j, state, svc, panicked)
		return
	}
	s.cache.put(ent)
	j.finish(StateDone, &ent, "")
	s.finishJob(j, StateDone, svc, false)
}

// classify maps a job execution error to its terminal state. The
// deadline check consults the job context — errors.Is on the error
// alone cannot tell "cancelled because the deadline fired" from
// "cancelled by DELETE", since both surface context.Canceled from
// replications already in flight.
func classify(ctx context.Context, err error) (state State, panicked bool) {
	switch {
	case err == nil:
		return StateDone, false
	case errors.As(err, new(*par.PanicError)):
		return StateFailed, true
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		return StateTimedOut, false
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return StateCancelled, false
	default:
		// A genuine replication error that merely coincides with
		// cancellation lands here: MapCtx preserves the lowest-index
		// real error.
		return StateFailed, false
	}
}

// progressFn wraps a job's progress recorder with the per-replication
// fault hook (nil faults: the job's own method, no wrapper).
func (s *Server) progressFn(j *Job) func(done, total int) {
	if s.faults == nil || s.faults.RepHook == nil {
		return j.setProgress
	}
	hook := s.faults.RepHook
	return func(done, total int) {
		hook()
		j.setProgress(done, total)
	}
}

// runCampaignJob executes one dequeued campaign job: the grid runs
// through campaign.Run against the server's content-addressed cache, so
// every grid point and replication batch the cache already knows is
// adopted instead of simulated, and everything computed is published
// for future campaigns and direct submissions alike.
func (s *Server) runCampaignJob(j *Job, ctx context.Context) (entry, error) {
	rep, err := campaign.Run(j.camp, campaign.Opts{
		Workers:   s.cfg.RepWorkers,
		Context:   ctx,
		Cache:     (*pointCache)(s),
		Progress:  s.progressFn(j),
		PointDone: j.setPoints,
	})
	if err != nil {
		return entry{}, err
	}
	return encodeCampaignResult(j.key, rep)
}

// pointCache adapts the server's result cache to campaign.Cache: grid
// points are read and written as the very entries scenario jobs use
// (same fingerprints, same Result envelope), so a campaign point, a
// direct submission of the expanded spec and a rerun all share bytes.
type pointCache Server

func (c *pointCache) Get(key string) (*scenario.Report, bool) {
	s := (*Server)(c)
	ent, disk, ok := s.cache.get(key)
	if !ok {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(ent.json, &res); err != nil || res.Report == nil {
		return nil, false
	}
	s.metrics.campaignPointHits.Inc()
	if disk {
		s.metrics.diskCacheHits.Inc()
	}
	return res.Report, true
}

func (c *pointCache) Put(key string, rep *scenario.Report) {
	s := (*Server)(c)
	ent, err := encodeResult(key, rep)
	if err != nil {
		return // unreachable: reports the runner builds always marshal
	}
	s.cache.put(ent)
}

// finishJob records a job's terminal transition: clears the in-flight
// slot, bumps the outcome counter, folds the service time into the
// retry-after estimate, and journals the end — unless Drain is
// abandoning, in which case a cancelled job's record is deliberately
// left non-terminal so a restart replays it.
func (s *Server) finishJob(j *Job, state State, svc time.Duration, panicked bool) {
	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	if svc > 0 {
		s.svcRuns++
		s.svcTotal += svc
	}
	suppress := s.abandoning && state == StateCancelled
	if suppress {
		s.abandoned++
	}
	s.mu.Unlock()
	s.metrics.finished.With(kindOf(j), string(state)).Inc()
	if panicked {
		s.metrics.panics.Inc()
	}
	if svc > 0 {
		s.metrics.svcFor(j).Observe(svc.Seconds())
	}
	s.observeE2E(j)
	// Journal outside s.mu: the end record write is disk I/O.
	if s.journal != nil && j.seq != 0 && !suppress {
		s.journal.end(j.seq, state)
	}
}

// observeE2E folds a terminal job's acceptance-to-terminal latency into
// the per-kind e2e histogram, read off its trace timeline (cache-hit
// answers included — their near-zero latencies are the point of the
// cache, and hiding them would skew the distribution optimistic the
// other way).
func (s *Server) observeE2E(j *Job) {
	stages := j.trace.Stages()
	if len(stages) < 2 {
		return
	}
	last := stages[len(stages)-1]
	if !State(last.Name).Terminal() {
		return
	}
	s.metrics.e2eFor(j).Observe(last.At.Sub(stages[0].At).Seconds())
}

// replay re-admits the journal's unfinished jobs after a restart. It
// runs in the background so New returns promptly; /readyz reports 503
// until it finishes. Each record resubmits through the normal
// admission path — same validation, same fingerprints — so a replayed
// study whose result the disk cache already holds completes instantly,
// and one that was mid-flight at the crash re-simulates to the
// bit-identical result. The replayed job gets a fresh journal seq; the
// old record is retired whatever the outcome, including records that
// no longer validate (a spec from a newer, incompatible build).
func (s *Server) replay(pending []journalRecord) {
	defer s.replayWG.Done()
	defer s.replaying.Store(false)
	for _, rec := range pending {
		s.replayOne(rec)
	}
}

// replayOne re-admits one journaled accept, blocking (politely) while
// the queue is full — recovery must not drop jobs to ErrQueueFull.
func (s *Server) replayOne(rec journalRecord) {
	timeout := time.Duration(rec.TimeoutS * float64(time.Second))
	for {
		var (
			j   *Job
			err error
		)
		switch rec.Kind {
		case "scenario":
			var spec scenario.Spec
			if err = json.Unmarshal(rec.Spec, &spec); err == nil {
				j, _, _, err = s.SubmitTimeout(spec, rec.Reps, timeout)
			}
		case "campaign":
			var spec campaign.Spec
			if err = json.Unmarshal(rec.Campaign, &spec); err == nil {
				j, _, _, err = s.SubmitCampaignTimeout(spec, timeout)
			}
		}
		switch {
		case errors.Is(err, ErrQueueFull):
			// Someone beat the replay to the queue; wait for room.
			time.Sleep(10 * time.Millisecond)
			continue
		case errors.Is(err, ErrClosed):
			// Shut down before the replay finished; the record stays
			// live in the journal and the next start replays it.
			return
		case err != nil:
			// The record no longer admits (an incompatible spec from an
			// older build, say). Log and retire it — replaying it forever
			// would wedge every future start.
			log.Printf("serve: journal: dropping unreplayable record seq %d: %v", rec.Seq, err)
			s.journal.end(rec.Seq, StateFailed)
			return
		default:
			if j != nil {
				j.markReplayed()
			}
			s.metrics.replayed.Inc()
			s.journal.end(rec.Seq, StateCancelled) // retire the old seq; the resubmission owns a new one
			return
		}
	}
}
