package serve

import (
	"repro/internal/obs"
)

// metrics holds the server's resolved metric handles. Event counters
// and latency histograms are the primary store — the legacy Counters
// snapshot (/v1/stats) is derived from them in Stats(), so the two
// surfaces cannot drift — while occupancy gauges and failure totals
// are render-time views over state other subsystems already own
// (queue, cache, journal), never a second copy.
//
// Every counter here is monotone: admission outcomes are counted after
// the admission decision, so a queue-full rejection increments only
// rejected_total and nothing is ever decremented.
type metrics struct {
	reg *obs.Registry

	subScenario       *obs.Counter // submissions_total{kind="scenario"}
	subCampaign       *obs.Counter // submissions_total{kind="campaign"}
	rejected          *obs.Counter
	cacheHits         *obs.Counter
	diskCacheHits     *obs.Counter
	coalesced         *obs.Counter
	campaignCacheHits *obs.Counter
	campaignPointHits *obs.Counter
	predictions       *obs.Counter
	predictCacheHits  *obs.Counter
	predictCoalesced  *obs.Counter
	finished          *obs.CounterVec // jobs_finished_total{kind,state}
	panics            *obs.Counter
	replayed          *obs.Counter
	registryOverflow  *obs.Counter

	queueWait    *obs.Histogram
	svcScenario  *obs.Histogram // job_service_seconds{kind="scenario"}
	svcCampaign  *obs.Histogram
	e2eScenario  *obs.Histogram // job_e2e_seconds{kind="scenario"}
	e2eCampaign  *obs.Histogram
	predictSolve *obs.Histogram
}

// Job kinds as metric label values.
const (
	kindScenario = "scenario"
	kindCampaign = "campaign"
)

// newMetrics registers the server's metric families. The gauge and
// failure-total funcs close over s and read live state at scrape time;
// they take only leaf locks (channel len, cache mutex, journal mutex,
// s.mu), none of which are ever held while rendering, so a scrape can
// never deadlock against serving.
func newMetrics(s *Server) *metrics {
	r := obs.NewRegistry()
	m := &metrics{reg: r}

	subs := r.NewCounterVec("plcsrv_submissions_total",
		"Accepted submissions by kind (queued, cached and coalesced alike; rejections are not counted).", "kind")
	m.subScenario = subs.With(kindScenario)
	m.subCampaign = subs.With(kindCampaign)
	m.rejected = r.NewCounter("plcsrv_rejected_total",
		"Submissions refused because the job queue was full.")
	m.cacheHits = r.NewCounter("plcsrv_cache_hits_total",
		"Submissions answered from the result cache without running.")
	m.diskCacheHits = r.NewCounter("plcsrv_disk_cache_hits_total",
		"Cache hits faulted in from the disk tier.")
	m.coalesced = r.NewCounter("plcsrv_coalesced_total",
		"Submissions attached to an identical queued or running job.")
	m.campaignCacheHits = r.NewCounter("plcsrv_campaign_cache_hits_total",
		"Campaign submissions answered whole from the result cache.")
	m.campaignPointHits = r.NewCounter("plcsrv_campaign_point_hits_total",
		"Campaign grid points adopted from the result cache instead of simulated.")
	m.predictions = r.NewCounter("plcsrv_predictions_total",
		"Synchronous /v1/predict calls answered.")
	m.predictCacheHits = r.NewCounter("plcsrv_predict_cache_hits_total",
		"Predictions served from the result cache without solving.")
	m.predictCoalesced = r.NewCounter("plcsrv_predict_coalesced_total",
		"Prediction cache misses that attached to an identical in-flight solve.")
	m.finished = r.NewCounterVec("plcsrv_jobs_finished_total",
		"Terminal job outcomes by kind and state.", "kind", "state")
	// Pre-resolve every combination so /metrics exposes each series
	// from the first scrape (zero-valued, then monotone).
	for _, kind := range []string{kindScenario, kindCampaign} {
		for _, st := range []State{StateDone, StateFailed, StateCancelled, StateTimedOut} {
			m.finished.With(kind, string(st))
		}
	}
	m.panics = r.NewCounter("plcsrv_panics_total",
		"Jobs failed by a recovered panic (isolated to the job).")
	m.replayed = r.NewCounter("plcsrv_journal_replayed_total",
		"Jobs re-admitted from the journal after a restart.")
	m.registryOverflow = r.NewCounter("plcsrv_registry_overflow_total",
		"Registrations that left the job registry above max-jobs because nothing terminal could be evicted.")

	bounds := obs.LatencyBuckets()
	m.queueWait = r.NewHistogram("plcsrv_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", bounds)
	svc := r.NewHistogramVec("plcsrv_job_service_seconds",
		"Wall-clock execution time of jobs that ran, by kind.", bounds, "kind")
	m.svcScenario = svc.With(kindScenario)
	m.svcCampaign = svc.With(kindCampaign)
	e2e := r.NewHistogramVec("plcsrv_job_e2e_seconds",
		"Acceptance-to-terminal latency by kind (cache hits included).", bounds, "kind")
	m.e2eScenario = e2e.With(kindScenario)
	m.e2eCampaign = e2e.With(kindCampaign)
	m.predictSolve = r.NewHistogram("plcsrv_predict_solve_seconds",
		"Analytic solve time of prediction cache misses (leaders only).", bounds)

	// Failure totals: views over the counters the journal and disk
	// cache already keep (accounted where the failure happens).
	r.NewCounterFunc("plcsrv_journal_write_failures_total",
		"Dropped journal writes (durability degraded).", func() float64 {
			if s.journal == nil {
				return 0
			}
			_, total := s.journal.failures()
			return float64(total)
		})
	r.NewCounterFunc("plcsrv_disk_cache_write_failures_total",
		"Dropped disk-cache writes (persistence degraded).", func() float64 {
			_, total := s.cache.diskFailures()
			return float64(total)
		})

	// Occupancy gauges.
	r.NewGaugeFunc("plcsrv_queue_depth",
		"Jobs waiting in the queue.", func() float64 { return float64(len(s.queue)) })
	r.NewGaugeFunc("plcsrv_queue_capacity",
		"Configured queue depth.", func() float64 { return float64(s.cfg.QueueDepth) })
	r.NewGaugeFunc("plcsrv_cache_entries",
		"Entries resident in the in-memory result cache.", func() float64 { return float64(s.cache.len()) })
	r.NewGaugeFunc("plcsrv_cache_bytes",
		"Bytes resident in the in-memory result cache.", func() float64 { return float64(s.cache.bytesUsed()) })
	r.NewGaugeFunc("plcsrv_disk_cache_bytes",
		"Bytes occupied by the disk cache tier (0 without -cache-dir).", func() float64 { return float64(s.cache.diskBytes()) })
	r.NewGaugeFunc("plcsrv_journal_live_records",
		"Accepted jobs the journal still owes a terminal record for.", func() float64 {
			if s.journal == nil {
				return 0
			}
			return float64(s.journal.liveCount())
		})
	r.NewGaugeFunc("plcsrv_journal_replaying",
		"1 while startup journal replay is still re-admitting jobs.", func() float64 {
			if s.replaying.Load() {
				return 1
			}
			return 0
		})
	r.NewGaugeFunc("plcsrv_registry_jobs",
		"Jobs resident in the registry (all states).", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.order))
		})
	return m
}

// kindOf maps a job to its metric label value.
func kindOf(j *Job) string {
	if j.IsCampaign() {
		return kindCampaign
	}
	return kindScenario
}

// svcFor and e2eFor pick the per-kind histogram handle.
func (m *metrics) svcFor(j *Job) *obs.Histogram {
	if j.IsCampaign() {
		return m.svcCampaign
	}
	return m.svcScenario
}

func (m *metrics) e2eFor(j *Job) *obs.Histogram {
	if j.IsCampaign() {
		return m.e2eCampaign
	}
	return m.e2eScenario
}

// subFor picks the per-kind submissions counter.
func (m *metrics) subFor(j *Job) *obs.Counter {
	if j.IsCampaign() {
		return m.subCampaign
	}
	return m.subScenario
}

// finishedCount sums a terminal state's count across kinds (the
// Counters compatibility view).
func (m *metrics) finishedCount(st State) int64 {
	return int64(m.finished.With(kindScenario, string(st)).Value() +
		m.finished.With(kindCampaign, string(st)).Value())
}

// Metrics returns the server's metric registry — mounted at
// GET /metrics by Handler, and available here for embedders that mount
// their own.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }
