package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// scrape fetches GET /metrics through the public handler and parses
// the exposition.
func scrape(t *testing.T, h http.Handler) map[string]*obs.ParsedFamily {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	if got := rr.Header().Get("Content-Type"); got != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, obs.ContentType)
	}
	fams, err := obs.ParseText(rr.Body)
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return fams
}

// counterValue reads one counter/gauge sample, failing on absence.
func counterValue(t *testing.T, fams map[string]*obs.ParsedFamily, name string, labels map[string]string) float64 {
	t.Helper()
	f := fams[name]
	if f == nil {
		t.Fatalf("family %s missing from /metrics", name)
	}
	v, ok := f.Value(labels)
	if !ok {
		t.Fatalf("family %s has no sample for %v", name, labels)
	}
	return v
}

// TestMetricsMatchStats pins the compatibility contract: every count
// /v1/stats reports must equal what /metrics exposes, because Stats()
// is derived from the same registry.
func TestMetricsMatchStats(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	h := s.Handler()

	spec := tinySpec("metrics-vs-stats")
	j1, _, _, err := s.Submit(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j1)
	if _, _, _, err := s.Submit(spec, 2); err != nil { // cache hit
		t.Fatal(err)
	}
	if _, _, _, err := s.Predict(tinySpec("metrics-predict")); err != nil {
		t.Fatal(err)
	}

	c, entries := s.Stats()
	fams := scrape(t, h)

	scenarioSubs := counterValue(t, fams, "plcsrv_submissions_total", map[string]string{"kind": "scenario"})
	campaignSubs := counterValue(t, fams, "plcsrv_submissions_total", map[string]string{"kind": "campaign"})
	if int64(scenarioSubs+campaignSubs) != c.Submissions {
		t.Errorf("submissions: /metrics %v+%v, /v1/stats %d", scenarioSubs, campaignSubs, c.Submissions)
	}
	if got := counterValue(t, fams, "plcsrv_cache_hits_total", nil); int64(got) != c.CacheHits {
		t.Errorf("cache hits: /metrics %v, stats %d", got, c.CacheHits)
	}
	if got := counterValue(t, fams, "plcsrv_predictions_total", nil); int64(got) != c.Predictions {
		t.Errorf("predictions: /metrics %v, stats %d", got, c.Predictions)
	}
	done := counterValue(t, fams, "plcsrv_jobs_finished_total", map[string]string{"kind": "scenario", "state": "done"})
	if int64(done) != c.Completed {
		t.Errorf("completed: /metrics %v, stats %d", done, c.Completed)
	}
	if got := counterValue(t, fams, "plcsrv_cache_entries", nil); int(got) != entries {
		t.Errorf("cache entries: /metrics %v, stats %d", got, entries)
	}

	// The executed job must have landed in the queue-wait, service and
	// e2e histograms.
	for _, name := range []string{"plcsrv_queue_wait_seconds", "plcsrv_job_service_seconds", "plcsrv_job_e2e_seconds"} {
		f := fams[name]
		if f == nil {
			t.Fatalf("family %s missing", name)
		}
		match := map[string]string{}
		if name != "plcsrv_queue_wait_seconds" {
			match["kind"] = "scenario"
		}
		if _, _, _, count := f.Buckets(match); count == 0 {
			t.Errorf("%s: no observations after a completed job", name)
		}
	}

	// Rejections must not count as submissions, and both surfaces must
	// agree on it. Fill the queue (worker held) then overflow it.
	s2 := mustNew(t, Config{QueueDepth: 1, Workers: 1})
	release := make(chan struct{})
	running := make(chan struct{}, 8)
	s2.testHoldRun = func(*Job) {
		running <- struct{}{}
		<-release
	}
	defer s2.Close()
	defer close(release)
	if _, _, _, err := s2.Submit(tinySpec("m-run"), 1); err != nil {
		t.Fatal(err)
	}
	<-running // worker held; the queue is free again
	if _, _, _, err := s2.Submit(tinySpec("m-q"), 1); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = s2.Submit(tinySpec("m-reject"), 1)
	if err != ErrQueueFull {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	c2, _ := s2.Stats()
	fams2 := scrape(t, s2.Handler())
	if got := counterValue(t, fams2, "plcsrv_rejected_total", nil); int64(got) != 1 || c2.Rejected != 1 {
		t.Errorf("rejected: /metrics %v, stats %d, want 1", got, c2.Rejected)
	}
	if c2.Submissions != 2 {
		t.Errorf("submissions after reject = %d, want 2 (rejections never counted)", c2.Submissions)
	}
}

// TestMetricsMonotoneAcrossScrapes pins monotonicity of the counter
// families the CI smoke step also checks: a second scrape after more
// traffic must never show a smaller value.
func TestMetricsMonotoneAcrossScrapes(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	h := s.Handler()

	j, _, _, err := s.Submit(tinySpec("mono-1"), 1)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	before := scrape(t, h)

	j2, _, _, err := s.Submit(tinySpec("mono-2"), 1)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	after := scrape(t, h)

	for _, name := range []string{"plcsrv_submissions_total", "plcsrv_jobs_finished_total", "plcsrv_cache_hits_total", "plcsrv_rejected_total"} {
		bf, af := before[name], after[name]
		if bf == nil || af == nil {
			t.Fatalf("family %s missing", name)
		}
		for _, sample := range bf.Samples {
			v, ok := af.Value(sample.Labels)
			if !ok {
				t.Errorf("%s%v disappeared between scrapes", name, sample.Labels)
				continue
			}
			if v < sample.Value {
				t.Errorf("%s%v went backwards: %v -> %v", name, sample.Labels, sample.Value, v)
			}
		}
	}
}

// TestTraceTimeline pins the per-job trace: stage names in lifecycle
// order on the status endpoint, the same trace on the terminal event
// line, and a cache-hit answer tracing accepted → done without ever
// queueing.
func TestTraceTimeline(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	h := s.Handler()

	spec := tinySpec("trace")
	j, _, _, err := s.Submit(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+j.ID(), nil))
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	assertStages(t, st.Trace, "accepted", "queued", "running", "first_batch", "done")
	for i, ts := range st.Trace {
		if ts.DeltaMS < 0 || ts.ElapsedMS < 0 {
			t.Errorf("stage %d has negative duration: %+v", i, ts)
		}
		if i > 0 && ts.ElapsedMS < st.Trace[i-1].ElapsedMS {
			t.Errorf("elapsed not monotone at stage %d: %+v", i, st.Trace)
		}
	}

	// The terminal NDJSON event line carries the same trace.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/v1/jobs/"+j.ID()+"/events", nil))
	lines := bytes.Split(bytes.TrimSpace(rr.Body.Bytes()), []byte("\n"))
	var last Event
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if !last.State.Terminal() || len(last.Trace) != len(st.Trace) {
		t.Errorf("terminal event trace has %d stages, status has %d", len(last.Trace), len(st.Trace))
	}

	// Cache hit: accepted straight to done, never queued.
	j2, cached, _, err := s.Submit(spec, 2)
	if err != nil || !cached {
		t.Fatalf("resubmit: cached=%v err=%v", cached, err)
	}
	assertStages(t, j2.Status().Trace, "accepted", "done")
}

func assertStages(t *testing.T, trace []TraceStage, want ...string) {
	t.Helper()
	got := make([]string, len(trace))
	for i, ts := range trace {
		got[i] = ts.Stage
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("trace stages = %v, want %v", got, want)
	}
}

// TestMetricsDeterminismNeutral pins the tentpole's safety property:
// with metrics always on, repeated runs of the same spec still produce
// byte-identical result payloads, and scraping /metrics between them
// perturbs nothing.
func TestMetricsDeterminismNeutral(t *testing.T) {
	s := mustNew(t, Config{})
	defer s.Close()
	h := s.Handler()

	run := func(name string) []byte {
		t.Helper()
		// Distinct server-side job each time; same spec bytes.
		j, _, _, err := s.Submit(tinySpec("determinism-neutral"), 3)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		res, _, ok := j.Result()
		if !ok {
			t.Fatalf("%s: no result", name)
		}
		return res
	}
	first := run("first")
	scrape(t, h) // a scrape between runs must not perturb anything
	second := run("second")
	if !bytes.Equal(first, second) {
		t.Fatal("result bytes differ with metrics enabled: instrumentation leaked into the payload")
	}
	if bytes.Contains(first, []byte("\"trace\"")) {
		t.Fatal("result payload contains a trace field: operational metadata leaked into results")
	}
}
