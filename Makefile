# Developer entry points. CI runs the same targets so local runs and
# the workflow cannot drift.

BENCH     ?= .
BENCHTIME ?= 1s
COUNT     ?= 3

.PHONY: build test race bench fuzz-smoke lint

build:
	go build ./...

test:
	go test ./...

# lint is the static gate: formatting, go vet, and plclint — the
# repo's own analyzers (detrand, maporder, journalerr) plus the
# //plclint:noalloc escape gate over the annotated hot functions.
# See docs/LINTING.md.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
	go run ./cmd/plclint ./...

race:
	go test -race ./...

# bench captures the benchmark baseline: every Benchmark* with
# -benchmem, COUNT runs each (benchstat wants repeated samples), parsed
# into BENCH_results.json with the raw text embedded. Tune time/count
# via `make bench BENCHTIME=1x COUNT=1` for a quick smoke.
bench:
	go test -run=XXX -bench='$(BENCH)' -benchmem -benchtime=$(BENCHTIME) -count=$(COUNT) ./... > bench.out
	go run ./cmd/benchjson < bench.out > BENCH_results.json
	@rm -f bench.out
	@echo "wrote BENCH_results.json"

# fuzz-smoke gives each scenario/campaign fuzzer a short budget — the
# CI regression net; long exploratory runs raise -fuzztime locally.
fuzz-smoke:
	go test ./internal/scenario -run=XXX -fuzz=FuzzSpecDecode -fuzztime=15s
	go test ./internal/scenario -run=XXX -fuzz=FuzzNormalizeIdempotent -fuzztime=15s
	go test ./internal/campaign -run=XXX -fuzz=FuzzCampaignDecode -fuzztime=15s
	go test ./internal/campaign -run=XXX -fuzz=FuzzCampaignExpand -fuzztime=15s
