package repro_test

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestCLIPipeline builds the actual binaries and replays the paper's
// Section 3 measurement session against them: plcd hosts the emulated
// power strip; ampstat resets, runs and fetches; faifa sniffs. This is
// the repository's outermost integration test — it exercises flag
// parsing, UDP framing, the MME codecs, the device firmware and the MAC
// in one pass.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	for _, tool := range []string{"plcd", "ampstat", "faifa", "sim1901", "plcbench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	// Start the daemon on an ephemeral port and scrape it from stdout.
	plcd := exec.Command(filepath.Join(bin, "plcd"), "-n", "3", "-listen", "127.0.0.1:0", "-seed", "5")
	stdout, err := plcd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	plcd.Stderr = os.Stderr
	if err := plcd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		plcd.Process.Kill()
		plcd.Wait()
	}()

	var addr string
	scanner := bufio.NewScanner(stdout)
	deadline := time.After(30 * time.Second)
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	done := make(chan struct{})
	go func() {
		for scanner.Scan() {
			if m := addrRe.FindStringSubmatch(scanner.Text()); m != nil {
				addr = m[1]
				close(done)
				// keep draining so plcd never blocks on stdout
				for scanner.Scan() {
				}
				return
			}
		}
	}()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("plcd never printed its address")
	}

	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	// The Section 3.2 session.
	run("ampstat", "-host", addr, "-op", "reset", "-all", "-n", "3")
	run("ampstat", "-host", addr, "-op", "run", "-duration", "20")
	out := run("ampstat", "-host", addr, "-op", "collision", "-all", "-n", "3")

	p := extractFloat(t, out, `collision_pr = ([0-9.]+)`)
	if p <= 0.05 || p > 0.25 {
		t.Errorf("CLI collision probability %v outside the N=3 band (output:\n%s)", p, out)
	}
	acked := extractFloat(t, out, `sum_acked\s+= ([0-9]+)`)
	if acked <= 0 {
		t.Errorf("no acked frames reported:\n%s", out)
	}

	// The Section 3.3 session: sniff 5 virtual seconds at D.
	fout := run("faifa", "-host", addr, "-duration", "5")
	if !strings.Contains(fout, "dominant burst size = 2") {
		t.Errorf("faifa did not find the paper's burst size:\n%s", fout)
	}
	mpdus := extractFloat(t, fout, `captured MPDUs\s+= ([0-9]+)`)
	if mpdus <= 0 {
		t.Errorf("faifa captured nothing:\n%s", fout)
	}

	// The published simulator invocation through its CLI.
	sout := run("sim1901", "-n", "3", "-sim-time", "2e7")
	sp := extractFloat(t, sout, `collision_pr\s+= ([0-9.]+)`)
	if d := sp - p; d > 0.04 || d < -0.04 {
		t.Errorf("CLI simulator %v vs CLI measurement %v disagree", sp, p)
	}

	// plcbench smoke: one quick experiment, markdown on stdout.
	bout := run("plcbench", "-quick", "-exp", "table1")
	if !strings.Contains(bout, "| 0 | 0 | 8 | 0 | 8 | 0 |") {
		t.Errorf("plcbench table1 wrong:\n%s", bout)
	}
}

func extractFloat(t *testing.T, s, pattern string) float64 {
	t.Helper()
	m := regexp.MustCompile(pattern).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("output does not match %q:\n%s", pattern, s)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("bad number %q: %v", m[1], err)
	}
	return v
}

// TestSim1901CLIRejectsBadVectors covers the CLI's input validation.
func TestSim1901CLIRejectsBadVectors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	path := filepath.Join(bin, "sim1901")
	if out, err := exec.Command("go", "build", "-o", path, "./cmd/sim1901").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	cases := [][]string{
		{"-cw", "8,16", "-dc", "0"}, // length mismatch
		{"-cw", "abc", "-dc", "0"},  // not a number
		{"-n", "0"},                 // no stations
		{"-cw", "0,16,32,64"},       // zero window
	}
	for _, args := range cases {
		cmd := exec.Command(path, args...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("sim1901 %v accepted bad input:\n%s", args, out)
		}
	}
}

// TestScenarioCLI exercises the declarative mode end to end through
// the real binary: validation output, replication statistics with
// serial output byte-identical to -parallel, and the channel-error
// twin pair producing measurably less throughput than its error-free
// twin under the same seeds.
func TestScenarioCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	path := filepath.Join(bin, "sim1901")
	if out, err := exec.Command("go", "build", "-o", path, "./cmd/sim1901").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(path, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("sim1901 %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	vout := run("-scenario", "examples/scenarios/heterogeneous.json", "-validate")
	if !strings.Contains(vout, "ok: scenario heterogeneous: engine sim, N=4") {
		t.Fatalf("-validate output unexpected:\n%s", vout)
	}

	serial := run("-scenario", "examples/scenarios/heterogeneous.json", "-reps", "4")
	parallel := run("-scenario", "examples/scenarios/heterogeneous.json", "-reps", "4", "-parallel")
	if serial != parallel {
		t.Fatalf("serial and -parallel scenario output differ:\n%s\n---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "95% CI, n=4") {
		t.Fatalf("no confidence interval in output:\n%s", serial)
	}

	noisy := run("-scenario", "examples/scenarios/channel-errors.json", "-reps", "3")
	clean := run("-scenario", "examples/scenarios/channel-errors-free.json", "-reps", "3")
	nt := extractFloat(t, noisy, `norm_throughput\s+= ([0-9.]+)`)
	ct := extractFloat(t, clean, `norm_throughput\s+= ([0-9.]+)`)
	if nt >= ct*0.9 {
		t.Errorf("channel-error throughput %v not measurably below error-free %v", nt, ct)
	}
	ne := extractFloat(t, noisy, `frame_errors\s+= ([0-9.]+)`)
	if ne == 0 {
		t.Errorf("channel-error scenario reported no frame errors:\n%s", noisy)
	}

	// A bad scenario must fail with a field-level message.
	cmd := exec.Command(path, "-scenario", filepath.Join(bin, "missing.json"))
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Errorf("missing scenario file accepted:\n%s", out)
	}
}

// TestCampaignCLI exercises campaign mode end to end through the real
// binary: validation output, the consolidated grid table with serial
// output byte-identical to -parallel, and fail-fast -reps / campaign
// replication-bound validation that names the offending flag or field.
func TestCampaignCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	path := filepath.Join(bin, "sim1901")
	if out, err := exec.Command("go", "build", "-o", path, "./cmd/sim1901").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(path, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("sim1901 %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	vout := run("-campaign", "examples/campaigns/saturation-error-grid.json", "-validate")
	if !strings.Contains(vout, "ok: campaign saturation-error-grid: 2 axes, 9 points") {
		t.Fatalf("-validate output unexpected:\n%s", vout)
	}

	serial := run("-campaign", "testdata/campaigns/tiny-grid.json")
	parallel := run("-campaign", "testdata/campaigns/tiny-grid.json", "-parallel")
	if serial != parallel {
		t.Fatalf("serial and -parallel campaign output differ:\n%s\n---\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "4 points") {
		t.Fatalf("campaign header does not describe the grid:\n%s", serial)
	}

	// The adaptive example must converge within its replication cap and
	// meet the requested half-width on every point.
	aout := run("-campaign", "examples/campaigns/adaptive-throughput.json")
	for _, line := range strings.Split(aout, "\n") {
		if strings.Contains(line, "NO") {
			t.Errorf("adaptive example did not converge: %s", line)
		}
	}
	ciRe := regexp.MustCompile(`([0-9.]+) ± ([0-9.]+)\s*$`)
	points := 0
	for _, line := range strings.Split(aout, "\n") {
		m := ciRe.FindStringSubmatch(line)
		if m == nil || strings.HasPrefix(line, "#") {
			continue
		}
		points++
		if hw, _ := strconv.ParseFloat(m[2], 64); hw > 0.005 {
			t.Errorf("norm_throughput CI half-width %v above the 0.005 target: %s", hw, line)
		}
	}
	if points != 5 {
		t.Errorf("adaptive example rendered %d grid rows, want 5:\n%s", points, aout)
	}

	// Fail-fast validation, naming the flag or field.
	fails := []struct {
		args []string
		want string
	}{
		{[]string{"-scenario", "testdata/scenarios/tiny-sweep.json", "-reps", "0"}, "-reps = 0"},
		{[]string{"-scenario", "x.json", "-campaign", "y.json"}, "mutually exclusive"},
		{[]string{"-campaign", "examples/campaigns/model-cw-grid.json", "-engine", "sim"}, "do not apply"},
		// -reps explicitly set alongside -campaign must error, not be
		// silently ignored (the campaign file owns its policy).
		{[]string{"-campaign", "examples/campaigns/model-cw-grid.json", "-reps", "5"}, "do not apply"},
	}
	for _, tc := range fails {
		out, err := exec.Command(path, tc.args...).CombinedOutput()
		if err == nil {
			t.Errorf("sim1901 %v accepted bad input:\n%s", tc.args, out)
			continue
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("sim1901 %v error does not mention %q:\n%s", tc.args, tc.want, out)
		}
	}

	// plcbench mirrors the flag validation: mutually exclusive modes
	// and a rejected -reps alongside -campaign.
	pb := filepath.Join(bin, "plcbench")
	if out, err := exec.Command("go", "build", "-o", pb, "./cmd/plcbench").CombinedOutput(); err != nil {
		t.Fatalf("build plcbench: %v\n%s", err, out)
	}
	pbFails := []struct {
		args []string
		want string
	}{
		{[]string{"-scenario", "a.json", "-campaign", "b.json"}, "mutually exclusive"},
		{[]string{"-campaign", "examples/campaigns/model-cw-grid.json", "-reps", "5"}, "does not apply"},
		{[]string{"-scenario", "testdata/scenarios/tiny-sweep.json", "-reps", "0"}, "-reps = 0"},
	}
	for _, tc := range pbFails {
		out, err := exec.Command(pb, tc.args...).CombinedOutput()
		if err == nil {
			t.Errorf("plcbench %v accepted bad input:\n%s", tc.args, out)
			continue
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("plcbench %v error does not mention %q:\n%s", tc.args, tc.want, out)
		}
	}

	// A campaign whose min_reps exceeds max_reps must fail naming both.
	bad := filepath.Join(bin, "bad.json")
	spec := `{"name":"bad","base":{"name":"b","sim_time_us":1e6,"stations":[{"count":1}]},` +
		`"axes":[{"path":"n","values":[1,2]}],"min_reps":9,"max_reps":3,` +
		`"targets":[{"metric":"norm_throughput","ci":0.01}]}`
	if err := os.WriteFile(bad, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(path, "-campaign", bad, "-validate").CombinedOutput()
	if err == nil {
		t.Fatalf("min_reps > max_reps accepted:\n%s", out)
	}
	if !strings.Contains(string(out), `"min_reps" = 9 > "max_reps" = 3`) {
		t.Errorf("error does not name min_reps/max_reps:\n%s", out)
	}
}
