package repro_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/golden files from current output")

// buildTool compiles one cmd/ binary into dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", path, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return path
}

// TestGoldenCLIOutput pins the exact bytes of the scenario-mode CLI
// renderings — sim1901's plain-text report and plcbench's markdown and
// CSV tables — against files under testdata/golden/. Formatting
// regressions (column widths, float formats, header wording, metric
// order) fail `go test ./...`; intentional changes regenerate with
// `go test -run TestGolden -update`.
func TestGoldenCLIOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	sim1901 := buildTool(t, bin, "sim1901")
	plcbench := buildTool(t, bin, "plcbench")
	const spec = "testdata/scenarios/tiny-sweep.json"
	const camp = "testdata/campaigns/tiny-grid.json"
	const cvCamp = "testdata/campaigns/tiny-cv-grid.json"
	const loadCamp = "testdata/campaigns/tiny-load-grid.json"
	const modelPoisson = "examples/scenarios/model-poisson-load.json"
	const modelPriority = "examples/scenarios/model-priority-mix.json"

	cases := []struct {
		golden string
		cmd    []string
	}{
		{"sim1901-scenario.txt", []string{sim1901, "-scenario", spec, "-reps", "3"}},
		// -parallel must not change a single byte; it shares sim1901's
		// golden file deliberately.
		{"sim1901-scenario.txt", []string{sim1901, "-scenario", spec, "-reps", "3", "-parallel"}},
		{"plcbench-scenario.md", []string{plcbench, "-scenario", spec, "-reps", "3", "-format", "md"}},
		{"plcbench-scenario.csv", []string{plcbench, "-scenario", spec, "-reps", "3", "-format", "csv"}},
		{"plcbench-scenario.json", []string{plcbench, "-scenario", spec, "-reps", "3", "-format", "json"}},
		// Campaign mode: the consolidated grid table, serial ≡ -parallel.
		{"sim1901-campaign.txt", []string{sim1901, "-campaign", camp}},
		{"sim1901-campaign.txt", []string{sim1901, "-campaign", camp, "-parallel"}},
		{"plcbench-campaign.md", []string{plcbench, "-campaign", camp, "-format", "md"}},
		{"plcbench-campaign.json", []string{plcbench, "-campaign", camp, "-format", "json"}},
		// Control-variate mode: the scenario report's adjusted-estimate
		// lines (-vr cv) and the adaptive campaign's converged-reps and
		// speedup columns, each serial ≡ -parallel.
		{"sim1901-scenario-cv.txt", []string{sim1901, "-scenario", spec, "-reps", "6", "-vr", "cv"}},
		{"sim1901-scenario-cv.txt", []string{sim1901, "-scenario", spec, "-reps", "6", "-vr", "cv", "-parallel"}},
		{"sim1901-campaign-cv.txt", []string{sim1901, "-campaign", cvCamp}},
		{"sim1901-campaign-cv.txt", []string{sim1901, "-campaign", cvCamp, "-parallel"}},
		{"plcbench-campaign-cv.md", []string{plcbench, "-campaign", cvCamp, "-format", "md"}},
		// Model engine over the widened regimes: Poisson offered load
		// and mixed priority classes answer analytically, with the
		// per-class metric split. Deterministic, so -engine model output
		// is a natural golden.
		{"sim1901-model-poisson.txt", []string{sim1901, "-scenario", modelPoisson, "-engine", "model"}},
		{"sim1901-model-priority.txt", []string{sim1901, "-scenario", modelPriority, "-engine", "model"}},
		// Campaign compare mode: the per-metric divergence table plus
		// per-point breakdown, serial ≡ -parallel; tiny-grid compares
		// against the sim engine, tiny-load-grid against the mac
		// fallback.
		{"sim1901-campaign-compare.txt", []string{sim1901, "-campaign", camp, "-compare"}},
		{"sim1901-campaign-compare.txt", []string{sim1901, "-campaign", camp, "-compare", "-parallel"}},
		{"plcbench-campaign-compare.md", []string{plcbench, "-campaign", loadCamp, "-compare", "-format", "md"}},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s_%s", filepath.Base(tc.cmd[0]), filepath.Base(tc.golden))
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(tc.cmd[0], tc.cmd[1:]...)
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			got, err := cmd.Output()
			if err != nil {
				t.Fatalf("%v: %v\n%s", tc.cmd, err, stderr.String())
			}
			path := filepath.Join("testdata", "golden", tc.golden)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (re-generate with `go test -run TestGolden -update`)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output differs from %s (re-generate with `go test -run TestGolden -update` if intentional)\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}
