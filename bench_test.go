// Package repro_test is the benchmark harness: one benchmark per table
// and figure of the paper (each delegating to the same experiment code
// cmd/plcbench renders), the ablation benches DESIGN.md calls out, and
// microbenchmarks of the performance-critical building blocks.
//
// Benchmarks use deliberately short virtual horizons per iteration so
// that -bench=. completes quickly; the paper-scale runs are the domain
// of cmd/plcbench (without -quick) and EXPERIMENTS.md records their
// output.
package repro_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/backoff"
	"repro/internal/boost"
	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/hpav"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// BenchmarkTable1Defaults regenerates the Table 1 constants table.
func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if len(t.Rows) != 4 {
			b.Fatal("wrong table")
		}
	}
}

// BenchmarkFigure1BackoffTrace regenerates the two-station backoff
// evolution trace of Figure 1.
func BenchmarkFigure1BackoffTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Figure1(3, 20)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTable2CollisionCounters regenerates the ΣC/ΣA counter table
// of Table 2 through the emulated testbed's MME counters.
func BenchmarkTable2CollisionCounters(b *testing.B) {
	cfg := experiments.Table2Config{Ns: []int{1, 4, 7}, DurationMicros: 4e6, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2CollisionProbability regenerates the three-way
// validation figure: simulation, analysis and emulated measurements.
func BenchmarkFigure2CollisionProbability(b *testing.B) {
	cfg := experiments.Figure2Config{
		Ns: []int{2, 5, 7}, Tests: 2,
		TestDurationMicros: 3e6, SimTimeMicros: 6e6, Seed: 1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 3 {
			b.Fatal("wrong point count")
		}
	}
}

// BenchmarkThroughputVsN regenerates the E1 protocol comparison.
func BenchmarkThroughputVsN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ThroughputVsN([]int{1, 5, 10}, 4e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoostConfigSearch regenerates the E2 configuration search
// (model scoring of the full grid plus simulator validation of the
// leaders).
func BenchmarkBoostConfigSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Boost([]int{2, 5}, 2e6, 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnifferOverhead regenerates the E3 sniffer capture analysis.
func BenchmarkSnifferOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Sniffer(3, 4e6, 100_000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShortTermFairness regenerates the E4 sliding-window
// comparison of 1901 and 802.11.
func BenchmarkShortTermFairness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ShortTermFairness(2, []int{10, 100}, 8e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDeferral regenerates the deferral-counter ablation.
func BenchmarkAblationDeferral(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDeferral([]int{7}, 4e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBurstSize regenerates the burst-size ablation.
func BenchmarkAblationBurstSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBurstSize(3, 3e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorAgreement regenerates the cross-implementation
// agreement check.
func BenchmarkSimulatorAgreement(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SimulatorAgreement([]int{3}, 4e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelSolvers compares the fixed-point strategies (the solver
// ablation): damped iteration vs forced bisection.
func BenchmarkModelSolvers(b *testing.B) {
	params := config.DefaultCA1()
	b.Run("damped", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := model.Solve(10, params, model.Options{Damping: 0.25}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bisection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := model.Solve(10, params, model.Options{MaxIterations: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBackoffStep measures the pure per-slot cost of the 1901
// backoff engine — the inner loop of every simulation.
func BenchmarkBackoffStep(b *testing.B) {
	s := backoff.NewStation(config.DefaultCA1(), rng.New(1))
	a := s.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a == backoff.Transmit {
			a = s.AfterBusy(true, i&1 == 0)
		} else {
			a = s.AfterIdle()
		}
	}
}

// BenchmarkSimEngine measures the slot-synchronous simulator's event
// rate at N=5 and reports simulated µs per wall-clock ns.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	var simulated float64
	for i := 0; i < b.N; i++ {
		in := sim.DefaultInputs(5)
		in.SimTime = 1e6
		in.Seed = uint64(i + 1)
		e, err := sim.NewEngine(in)
		if err != nil {
			b.Fatal(err)
		}
		r := e.Run()
		simulated += r.Elapsed
	}
	b.ReportMetric(simulated/float64(b.Elapsed().Nanoseconds()), "simulated-µs/ns")
}

// BenchmarkMACNetwork measures the event-driven MAC's rate on the
// paper's 7-station saturated scenario.
func BenchmarkMACNetwork(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := testbed.New(testbed.Options{N: 7, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		tb.Run(1e6)
	}
}

// BenchmarkMACNetworkSteadyState measures the medium loop alone: the
// testbed is built once and only Run is timed, so allocs/op exposes the
// per-event allocation count of the hot loop (0 after the scratch-buffer
// rework).
func BenchmarkMACNetworkSteadyState(b *testing.B) {
	tb, err := testbed.New(testbed.Options{N: 7, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tb.Run(1e6) // warm the scratch buffers and counter buckets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Run(1e6)
	}
}

// noopSlotObserver forces sim.Engine onto its slot-by-slot path (any
// observer disables the idle fast-forward) without doing any work, so
// the two arms of BenchmarkEngineIdleFastForward compare the batched
// loop against the traced per-slot loop on identical inputs.
type noopSlotObserver struct{}

func (noopSlotObserver) OnSlot(float64, sim.SlotKind, []int, []backoff.Snapshot) {}

// BenchmarkEngineIdleFastForward measures the idle-slot fast-forward in
// its target regime — idle-dominated contention (small N, large CW,
// where most medium events are empty 35.84 µs slots) — and reports
// simulated µs per wall-clock ns. The slot-by-slot arms run the same
// inputs through the per-slot fallback for comparison; both arms are
// bit-identical in output (see internal/sim's equivalence tests). The
// CA0 arms use the paper's Table 1 schedule at N=2; the wide-CW arms
// model the large windows the boosting search explores, where idle runs
// span hundreds of slots and the batch pays off the most.
func BenchmarkEngineIdleFastForward(b *testing.B) {
	wide := config.Params{Name: "wide", CW: []int{512, 512, 512, 512}, DC: []int{0, 1, 3, 15}}
	run := func(b *testing.B, params config.Params, obs sim.Observer) {
		b.ReportAllocs()
		var simulated float64
		for i := 0; i < b.N; i++ {
			in := sim.DefaultInputs(2)
			in.Params = params
			in.SimTime = 1e6
			in.Seed = uint64(i + 1)
			e, err := sim.NewEngine(in)
			if err != nil {
				b.Fatal(err)
			}
			if obs != nil {
				e.SetObserver(obs)
			}
			r := e.Run()
			simulated += r.Elapsed
		}
		b.ReportMetric(simulated/float64(b.Elapsed().Nanoseconds()), "simulated-µs/ns")
	}
	ca0 := config.Default1901(config.CA0)
	b.Run("ca0/batched", func(b *testing.B) { run(b, ca0, nil) })
	b.Run("ca0/slot-by-slot", func(b *testing.B) { run(b, ca0, noopSlotObserver{}) })
	b.Run("wide-cw/batched", func(b *testing.B) { run(b, wide, nil) })
	b.Run("wide-cw/slot-by-slot", func(b *testing.B) { run(b, wide, noopSlotObserver{}) })
}

// BenchmarkMMECodec measures the stats-confirm marshal/unmarshal round
// trip, the hot path of the UDP management plane.
func BenchmarkMMECodec(b *testing.B) {
	frame := &hpav.Frame{
		ODA: hpav.MAC{0, 0xB0, 0x52, 0, 0, 1}, OSA: hpav.MAC{0, 0xB0, 0x52, 0, 0, 2},
		Type: hpav.MMTypeStatsCnf, OUI: hpav.IntellonOUI,
		Payload: (&hpav.StatsCnf{Acked: 162220, Collided: 25}).Marshal(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := frame.Marshal()
		f, err := hpav.Unmarshal(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hpav.UnmarshalStatsCnf(f.Payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRNG measures the backoff-draw rate of the PRNG.
func BenchmarkRNG(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = src.Backoff(64)
	}
}

// predictSpec is the shared operating point of the model-vs-simulation
// speedup pair: 10 saturated CA1 stations over the paper's example
// horizon of 5·10⁸ µs (the published sim_1901 invocation's duration).
// BenchmarkModelPredict answers it analytically — the fixed point is
// horizon-independent, so its cost does not grow with sim_time_us —
// while BenchmarkSimPointReplication runs one simulated replication of
// the identical spec; the speedup (≥ 100×) reads directly off these
// two entries in BENCH_results.json.
func predictSpec() scenario.Spec {
	return scenario.Spec{
		Name:          "predict-bench",
		SimTimeMicros: 5e8,
		Stations:      []scenario.Group{{Count: 10}},
	}
}

// BenchmarkModelPredict measures one analytic scenario point: the
// heterogeneous fixed point plus metric derivation, the unit of work
// behind `sim1901 -engine model` and the serving daemon's /v1/predict.
func BenchmarkModelPredict(b *testing.B) {
	s := predictSpec()
	s.Engine = scenario.EngineModel
	c, err := scenario.Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunOnce(c.Points[0], 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelPredictLoaded measures the widened analytic regime:
// the loaded (unsaturated) fixed point with mixed CA1/CA3 priority
// classes — the joint damped iteration over attempt availability plus
// the strict-priority class ladder, the unit of work behind
// /v1/predict on a Poisson-load spec.
func BenchmarkModelPredictLoaded(b *testing.B) {
	s := scenario.Spec{
		Name:          "predict-bench-loaded",
		Engine:        scenario.EngineModel,
		SimTimeMicros: 5e8,
		Stations: []scenario.Group{
			{Count: 5, Priority: "CA1", Traffic: &scenario.Traffic{Kind: "poisson", MeanInterarrivalMicros: 1e5}},
			{Count: 2, Priority: "CA3", Traffic: &scenario.Traffic{Kind: "poisson", MeanInterarrivalMicros: 2e5}},
		},
	}
	c, err := scenario.Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunOnce(c.Points[0], 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPointReplication measures one simulated replication of
// the same spec BenchmarkModelPredict answers analytically.
func BenchmarkSimPointReplication(b *testing.B) {
	s := predictSpec()
	s.Engine = scenario.EngineSim
	c, err := scenario.Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.RunOnce(c.Points[0], uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServePredict measures POST /v1/predict end to end through
// the HTTP handler: the cold arm defeats the cache with a fresh seed
// per iteration (every request solves), the hot arm repeats one spec
// (every request after the first is a fingerprint cache hit — the
// sub-millisecond serving path).
func BenchmarkServePredict(b *testing.B) {
	run := func(b *testing.B, body func(i int) string) {
		s, err := serve.New(serve.Config{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body(i)))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("predict status %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	const spec = `{"name":"serve-predict-bench","engine":"model","sim_time_us":5e7,"seed":%d,"stations":[{"count":10}]}`
	b.Run("cold", func(b *testing.B) {
		run(b, func(i int) string {
			// A fresh seed changes the fingerprint (never the analytic
			// answer), forcing a solve per request.
			return `{"spec":` + fmt.Sprintf(spec, i+1) + `}`
		})
	})
	b.Run("cached", func(b *testing.B) {
		body := `{"spec":` + fmt.Sprintf(spec, 1) + `}`
		run(b, func(int) string { return body })
	})
}

// cvCampaignSpec is the operating point of the control-variate pair:
// the adaptive saturation sweep from the acceptance test, targeting the
// paper's headline collision probability at a ±0.002 half-width. The
// plain and cv arms share every seed (common random numbers), so the
// "simreps/op" metric reads the variance-reduction speedup directly off
// BENCH_results.json: plain needs ~5× the simulated replications the
// regression-adjusted estimator needs for the same interval.
func cvCampaignSpec(withCV bool) campaign.Spec {
	base := scenario.Spec{
		Name:          "cv-bench-base",
		SimTimeMicros: 1e6,
		Seed:          7,
		Stations:      []scenario.Group{{Count: 1}},
	}
	if withCV {
		base.VarianceReduction = &scenario.VarianceReduction{Kind: scenario.VRControlVariate}
	}
	return campaign.Spec{
		Name:      "cv-bench",
		Base:      base,
		Axes:      []campaign.Axis{{Path: "n", Values: []json.RawMessage{[]byte("2"), []byte("3"), []byte("5")}}},
		Targets:   []campaign.Target{{Metric: "collision_pr", CI: 0.002}},
		MinReps:   4,
		MaxReps:   2000,
		BatchReps: 2,
	}
}

// BenchmarkControlVariateCampaign measures the adaptive campaign under
// both estimators. Each iteration runs the whole grid to convergence;
// simreps/op is the total number of simulated replications the stopping
// rule consumed, the quantity the control variate exists to shrink.
func BenchmarkControlVariateCampaign(b *testing.B) {
	run := func(b *testing.B, withCV bool) {
		c, err := campaign.Compile(cvCampaignSpec(withCV))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		var simreps int
		for i := 0; i < b.N; i++ {
			rep, err := campaign.Run(c, campaign.Opts{Workers: 4})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range rep.Points {
				if !p.Converged {
					b.Fatalf("point %v failed to converge", p.Labels)
				}
			}
			simreps += rep.SimulatedReps
		}
		b.ReportMetric(float64(simreps)/float64(b.N), "simreps/op")
	}
	b.Run("plain", func(b *testing.B) { run(b, false) })
	b.Run("cv", func(b *testing.B) { run(b, true) })
}

// BenchmarkBoostModelScore measures the model-side scoring cost of one
// candidate across four contention levels — the unit the search pays
// per grid point.
func BenchmarkBoostModelScore(b *testing.B) {
	p := config.DefaultCA1()
	for i := 0; i < b.N; i++ {
		if _, err := boost.ScoreModel(p, []int{2, 5, 10, 15}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessDelay regenerates the E5 delay-vs-N experiment.
func BenchmarkAccessDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AccessDelay([]int{1, 5}, 4e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayVsLoad regenerates the E6 hockey-stick experiment.
func BenchmarkDelayVsLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DelayVsLoad(3, []float64{0.1, 0.5}, 4e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelAccuracy regenerates the E7 decoupling-error table.
func BenchmarkModelAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ModelAccuracy([]int{2, 5}, 4e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoexistence regenerates the E8 heterogeneous-configuration
// experiment.
func BenchmarkCoexistence(b *testing.B) {
	inf := 1 << 20
	aggr := config.Params{Name: "aggr", CW: []int{4, 8, 16, 32}, DC: []int{inf, inf, inf, inf}}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Coexistence(aggr, 3, 4e6, 1); err != nil {
			b.Fatal(err)
		}
	}
}
