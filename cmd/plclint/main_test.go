package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/noalloc"
)

func moduleDir(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestCleanTree is the repo-wide smoke test: every analyzer, with its
// shipping scope, must come back clean over ./... — all real findings
// were either fixed or carry a justified //plclint:allow annotation —
// and the noalloc gate must pass with the hot functions annotated.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	mod := moduleDir(t)
	pkgs, err := analysis.Load(mod, "./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern resolution looks broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		var run []*analysis.Analyzer
		for _, a := range analyzers {
			if inScope(pkg.ImportPath, scopes[a.Name]) {
				run = append(run, a)
			}
		}
		diags, err := analysis.Run(pkg, run)
		if err != nil {
			t.Fatalf("run on %s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("finding on shipped tree: %s", d)
		}
	}

	violations, annotated, err := noalloc.Check(mod, pkgs)
	if err != nil {
		t.Fatalf("noalloc gate: %v", err)
	}
	for _, v := range violations {
		t.Errorf("noalloc violation on shipped tree: %s", v)
	}
	if len(annotated) < 8 {
		t.Errorf("only %d //plclint:noalloc annotations found, want >= 8", len(annotated))
	}
}

// TestVettool drives the binary through go vet's -vettool protocol
// against a package in detrand's scope, pinning the unitchecker
// handshake (-V=full, -flags, per-package cfg files) end to end.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short")
	}
	mod := moduleDir(t)
	bin := filepath.Join(t.TempDir(), "plclint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/plclint")
	build.Dir = mod
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build plclint: %v\n%s", err, out)
	}

	// internal/rng is in detrand's scope but exempt as the sanctioned
	// PRNG owner; internal/stats carries noalloc annotations (inert in
	// vettool mode). Both must vet clean.
	cmd := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/rng", "./internal/stats")
	cmd.Dir = mod
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -vettool on clean packages failed: %v\n%s", err, buf.String())
	}

	// A scratch module whose package path lands in detrand's scope
	// (suffix internal/sim) and violates it; the vettool run must fail
	// and name the findings.
	scratch := t.TempDir()
	writeFile(t, filepath.Join(scratch, "go.mod"), "module scratch\n\ngo 1.21\n")
	writeFile(t, filepath.Join(scratch, "internal", "sim", "sim.go"), `package sim

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Draw() int { return rand.Intn(6) }
`)
	cmd = exec.Command("go", "vet", "-vettool="+bin, "./internal/sim")
	cmd.Dir = scratch
	buf.Reset()
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool on a violating package unexpectedly passed:\n%s", buf.String())
	}
	for _, needle := range []string{"time.Now reads the wall clock", "use of math/rand.Intn"} {
		if !strings.Contains(buf.String(), needle) {
			t.Errorf("vettool output missing %q:\n%s", needle, buf.String())
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestListFlag keeps the -list inventory in sync with the analyzer set.
func TestListFlag(t *testing.T) {
	mod := moduleDir(t)
	cmd := exec.Command("go", "run", "./cmd/plclint", "-list")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("plclint -list: %v\n%s", err, out)
	}
	for _, name := range []string{"detrand", "maporder", "journalerr", "noalloc"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}
