package main

// vettool.go implements the `go vet -vettool=` driver protocol (the
// x/tools "unitchecker" contract) with the standard library only:
//
//  1. `plclint -V=full` prints a tool identity line cmd/go hashes into
//     its build cache key;
//  2. `plclint -flags` prints the tool's analyzer flags as JSON (none);
//  3. `plclint <unit>.cfg` analyzes one compilation unit described by
//     the JSON config cmd/go writes, importing dependencies from the
//     export-data files listed there, and writes the (empty) facts
//     file cmd/go expects.
//
// The noalloc escape gate does not run in vettool mode — it needs
// whole-program `go build` runs, which `make lint` drives directly.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// vetConfig is the compilation-unit description cmd/go hands to vet
// tools. Field set and semantics follow x/tools' unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vettool handles the protocol if invoked by cmd/go, reporting whether
// it consumed the invocation.
func vettool() bool {
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return true
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return true
		case strings.HasSuffix(args[0], ".cfg"):
			code := checkUnit(args[0])
			os.Exit(code)
		}
	}
	return false
}

// printVersion emits the identity line in the format cmd/go parses:
// "name version ... buildID=hex". Hashing the executable itself means
// a rebuilt plclint invalidates stale vet caches.
func printVersion() {
	name := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		// Best-effort self-hash; a read error just degrades the cache key.
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, string(h.Sum(nil)))
}

// checkUnit analyzes one compilation unit and returns the process exit
// code: 0 clean, 1 findings, 2 error.
func checkUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plclint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "plclint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// cmd/go requires the facts file regardless of findings.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "plclint:", err)
			}
		}
	}
	if cfg.VetxOnly {
		// Dependency unit, analyzed only for facts — we export none.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	sources := map[string][]byte{}
	var files []*ast.File
	for _, path := range cfg.GoFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plclint:", err)
			return 2
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return 0
			}
			fmt.Fprintln(os.Stderr, "plclint:", err)
			return 2
		}
		sources[path] = src
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "plclint:", err)
		return 2
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
		Sources:    sources,
	}
	var run []*analysis.Analyzer
	for _, a := range analyzers {
		if inScope(cfg.ImportPath, scopes[a.Name]) {
			run = append(run, a)
		}
	}
	diags, err := analysis.Run(pkg, run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plclint:", err)
		return 2
	}
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		return 1
	}
	return 0
}
