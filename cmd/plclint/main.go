// Command plclint statically enforces the repository's determinism,
// hot-path and error-handling invariants.
//
// Standalone:
//
//	plclint ./...             run all analyzers + the noalloc escape gate
//	plclint -noalloc=false ./...   AST analyzers only
//	plclint -list             print the analyzers and their package scopes
//
// As a vet tool (unitchecker protocol):
//
//	go vet -vettool=$(which plclint) ./...
//
// Exit status: 0 clean, 1 findings, 2 tool error.
//
// Analyzer scoping mirrors the invariants' blast radius: detrand runs
// over the result-producing packages (plus internal/serve and
// internal/obs — serve reads operational time only through obs, the
// sanctioned wall-clock owner), journalerr over the journal/disk-cache
// owners internal/serve and internal/campaign, and maporder
// everywhere — any package can grow a render path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/journalerr"
	"repro/internal/analysis/maporder"
	"repro/internal/analysis/noalloc"
)

// resultPackages are the packages whose output is part of a result —
// a simulation metric, a rendered table, a fingerprint. detrand's
// wall-clock/randomness ban applies here. internal/serve is included
// so a stray time.Now cannot creep back in (operational timing goes
// through internal/obs, the analyzer-exempt wall-clock owner, which is
// itself listed so the exemption stays pinned by its test).
var resultPackages = []string{
	"internal/sim", "internal/mac", "internal/backoff",
	"internal/scenario", "internal/campaign", "internal/stats",
	"internal/model", "internal/boost", "internal/experiments",
	"internal/rng", "internal/timing", "internal/traffic",
	"internal/serve", "internal/obs",
}

// journalPackages own the durable-write paths (job journal, disk
// cache) whose dropped errors journalerr flags.
var journalPackages = []string{
	"internal/serve", "internal/campaign",
}

// scopes maps each analyzer to a package filter; nil means every
// package.
var scopes = map[string][]string{
	detrand.Analyzer.Name:    resultPackages,
	journalerr.Analyzer.Name: journalPackages,
	maporder.Analyzer.Name:   nil,
}

var analyzers = []*analysis.Analyzer{
	detrand.Analyzer,
	maporder.Analyzer,
	journalerr.Analyzer,
}

func inScope(importPath string, scope []string) bool {
	if scope == nil {
		return true
	}
	for _, suffix := range scope {
		if strings.HasSuffix(importPath, suffix) {
			return true
		}
	}
	return false
}

func main() {
	// go vet's unitchecker handshake comes before normal flag
	// parsing: -V=full, -flags, then one *.cfg argument per package.
	if vettool() {
		return
	}

	noallocGate := flag.Bool("noalloc", true, "run the //plclint:noalloc escape gate")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: plclint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-10s fail on heap escapes inside //plclint:noalloc functions\n", noalloc.Name)
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if s := scopes[a.Name]; s != nil {
				scope = strings.Join(s, ", ")
			}
			fmt.Printf("%-10s %s\n    scope: %s\n", a.Name, a.Doc, scope)
		}
		fmt.Printf("%-10s fail on heap escapes inside //plclint:noalloc functions\n    scope: all packages\n", noalloc.Name)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, pkg := range pkgs {
		var run []*analysis.Analyzer
		for _, a := range analyzers {
			if inScope(pkg.ImportPath, scopes[a.Name]) {
				run = append(run, a)
			}
		}
		diags, err := analysis.Run(pkg, run)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d)
			findings++
		}
	}

	if *noallocGate {
		violations, annotated, err := noalloc.Check(cwd, pkgs)
		if err != nil {
			fatal(err)
		}
		for _, v := range violations {
			fmt.Println(v)
			findings++
		}
		if len(annotated) == 0 {
			// The gate guards specific hot functions; a tree with no
			// annotations means the gate is wired to nothing.
			fmt.Fprintln(os.Stderr, "plclint: warning: no //plclint:noalloc annotations found; escape gate had nothing to check")
		}
	}

	if findings > 0 {
		fmt.Fprintf(os.Stderr, "plclint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plclint:", err)
	os.Exit(2)
}
