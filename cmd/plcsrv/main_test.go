package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestPlcsrvSmoke boots the serving daemon on a loopback port, submits
// one tiny scenario over HTTP, waits for a well-formed result, and
// checks clean SIGTERM shutdown. The queue/cache semantics live in
// internal/serve's tests; this pins the binary: flags, banner, wiring,
// signal handling, exit code.
func TestPlcsrvSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "plcsrv")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-queue", "4")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	defer func() {
		if !exited {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	drained := make(chan struct{})
	var tail strings.Builder
	go func() {
		defer close(drained)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			tail.WriteString(line + "\n")
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(30 * time.Second):
		t.Fatal("plcsrv never printed its address")
	}
	base := "http://" + addr

	// Submit one tiny scenario.
	body := `{"spec":{"name":"smoke","sim_time_us":1e6,"stations":[{"count":2}]},"reps":2}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: code=%d resp=%+v", resp.StatusCode, sub)
	}

	// Poll to completion and fetch the result.
	deadline := time.Now().Add(30 * time.Second)
	var st serve.Status
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != serve.StateDone {
		t.Fatalf("job state = %+v", st)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%s/result", base, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	var res serve.Result
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("result does not parse: %v", err)
	}
	if res.Key != sub.Key || res.Report == nil || len(res.Report.Points) != 1 || res.Text == "" {
		t.Fatalf("malformed result: key=%q report=%v", res.Key, res.Report)
	}

	// Clean shutdown. Wait for the drain goroutine's EOF before
	// cmd.Wait so the final output lines land in tail and the pipe is
	// fully read.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("plcsrv stdout never reached EOF after SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("plcsrv did not exit cleanly: %v", err)
	}
	exited = true
	if !strings.Contains(tail.String(), "shutting down") {
		t.Errorf("missing shutdown banner in output:\n%s", tail.String())
	}
}
