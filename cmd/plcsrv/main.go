// Command plcsrv is the scenario-serving daemon: a long-lived HTTP/JSON
// service that accepts declarative scenario submissions (the same JSON
// schema as `sim1901 -scenario`), runs them on a bounded asynchronous
// job queue, and answers repeated identical submissions from a
// content-addressed result cache — bit-identically to the first
// computed result, and to the CLI on the same spec.
//
// Typical session:
//
//	plcsrv -listen 127.0.0.1:8277 -cache-dir /var/cache/plcsrv &
//	curl -s -X POST 127.0.0.1:8277/v1/jobs \
//	     -d "{\"spec\": $(cat examples/scenarios/heterogeneous.json), \"reps\": 10}"
//	curl -s 127.0.0.1:8277/v1/jobs/j1/events        # per-replication progress
//	curl -s 127.0.0.1:8277/v1/jobs/j1/result        # aggregated JSON
//	curl -s "127.0.0.1:8277/v1/jobs/j1/result?format=text"  # sim1901-identical text
//
// Analytic predictions answer synchronously — no queue, no polling:
//
//	curl -s -X POST 127.0.0.1:8277/v1/predict \
//	     -d "{\"spec\": $(cat examples/scenarios/model-saturation-sweep.json)}"
//
// Campaigns — multi-axis parameter grids over a base scenario, with
// fixed or adaptive replication — ride the same queue and cache; every
// grid point dedupes against individual submissions and reruns are
// answered without simulation:
//
//	curl -s -X POST 127.0.0.1:8277/v1/campaigns \
//	     -d "{\"campaign\": $(cat examples/campaigns/saturation-error-grid.json)}"
//	curl -s "127.0.0.1:8277/v1/campaigns/c1/result?format=text"
//
// See docs/SERVING.md for the full API and the determinism guarantee.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8277", "TCP address to serve HTTP on")
		workers    = flag.Int("workers", 1, "jobs run concurrently")
		repWorkers = flag.Int("rep-workers", 0, "worker-pool width each job fans its replications across (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 64, "pending-job queue depth (submissions beyond it get 503)")
		cacheSize  = flag.Int("cache", 128, "in-memory result-cache entries (LRU)")
		cacheBytes = flag.Int("cache-bytes", 0, "in-memory result-cache byte budget (0 = 256 MiB)")
		cacheDir   = flag.String("cache-dir", "", "directory to persist results to (empty = memory only)")
		maxReps    = flag.Int("max-reps", 10000, "maximum replications a single submission may request")
		maxJobs    = flag.Int("max-jobs", 1024, "job-registry bound; oldest finished jobs are evicted beyond it")
		journalDir = flag.String("journal-dir", "", "directory for the job journal; accepted jobs survive a crash and replay on restart (empty = no journal)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job running-time limit, and the cap on per-request timeout_s (0 = none)")
		drainTime  = flag.Duration("drain-timeout", 10*time.Second, "how long shutdown lets running jobs finish before abandoning them to the journal")
		pprofAddr  = flag.String("pprof-addr", "", "TCP address to serve net/http/pprof on (empty = disabled); keep it loopback-only")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		QueueDepth:   *queueDepth,
		Workers:      *workers,
		RepWorkers:   *repWorkers,
		CacheEntries: *cacheSize,
		CacheBytes:   *cacheBytes,
		CacheDir:     *cacheDir,
		MaxReps:      *maxReps,
		MaxJobs:      *maxJobs,
		JournalDir:   *journalDir,
		JobTimeout:   *jobTimeout,
	})
	if err != nil {
		// Most likely an unusable -cache-dir or -journal-dir: refuse to
		// run without the persistence the operator asked for.
		fmt.Fprintln(os.Stderr, "plcsrv:", err)
		os.Exit(1)
	}

	// pprof stays off the service mux: profiling is opt-in, on its own
	// listener, so the API port never exposes it. The handlers are
	// registered explicitly — nothing here touches http.DefaultServeMux.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plcsrv:", err)
			os.Exit(1)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("plcsrv: pprof on %s/debug/pprof/\n", pln.Addr())
		go http.Serve(pln, pmux)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plcsrv:", err)
		os.Exit(1)
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("plcsrv: listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("plcsrv: %v, shutting down (drain %s)\n", s, *drainTime)
		// Graceful half first: stop admissions and let running jobs
		// finish for up to -drain-timeout. Jobs abandoned at the
		// deadline keep their journal records non-terminal, so a
		// restart with the same -journal-dir replays them. Close then
		// releases the workers and the journal, and Shutdown drains
		// the HTTP side (terminating in-flight event streams).
		drained, abandoned := srv.Drain(*drainTime)
		fmt.Printf("plcsrv: drained %d job(s), abandoned %d to the journal\n", drained, abandoned)
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(ctx)
		cancel()
		<-errc
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "plcsrv:", err)
			os.Exit(1)
		}
	}
}
