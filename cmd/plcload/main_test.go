package main

import (
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
)

// startServer boots an in-process serving stack behind httptest, the
// same handler plcsrv mounts, and returns its base address (host:port,
// no scheme — exercising the scheme-defaulting path).
func startServer(t *testing.T) string {
	t.Helper()
	srv, err := serve.New(serve.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return hs.Listener.Addr().String()
}

// writeSpec drops a tiny scenario file and returns its path.
func writeSpec(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	spec := `{"name": "load-smoke", "sim_time_us": 1e6, "stations": [{"count": 2}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeCampaign drops a tiny two-point campaign file.
func writeCampaign(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	camp := `{
	  "name": "load-camp",
	  "base": {"name": "load-camp-base", "sim_time_us": 1e6, "stations": [{"count": 1}]},
	  "axes": [{"path": "n", "values": [2, 3]}],
	  "reps": 1
	}`
	if err := os.WriteFile(path, []byte(camp), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseConfig(addr string) config {
	return config{
		addr:        addr,
		requests:    6,
		duration:    time.Minute,
		concurrency: 2,
		maxInflight: 16,
		reps:        1,
		hotSeeds:    1,
		seed:        1,
		timeout:     30 * time.Second,
	}
}

func loadSingle(t *testing.T, path string) []specEntry {
	t.Helper()
	entries, err := loadEntries([]weighted{{1, path}})
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

// TestClosedLoopHotMix pins the cache-hit knob: with -hit-ratio 1 and
// one hot seed, every request is the same job, so exactly one
// simulation runs and the rest answer from the cache or coalesce —
// visible both client-side and in the scraped server deltas.
func TestClosedLoopHotMix(t *testing.T) {
	addr := startServer(t)
	cfg := baseConfig(addr)
	cfg.hitRatio = 1
	cfg.entries = loadSingle(t, writeSpec(t, t.TempDir(), "s.json"))

	rep, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 6 || rep.Completed != 6 || rep.Errors != 0 || rep.Failed != 0 {
		t.Fatalf("requests/completed/errors/failed = %d/%d/%d/%d, want 6/6/0/0",
			rep.Requests, rep.Completed, rep.Errors, rep.Failed)
	}
	if rep.Cached+rep.Coalesced < 4 {
		t.Errorf("hit-ratio 1 with one hot seed: cached %d + coalesced %d, want ≥ 4", rep.Cached, rep.Coalesced)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.Max < rep.Latency.P50 {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	if rep.ServerDelta == nil {
		t.Fatal("server deltas missing: /metrics scrape did not happen")
	}
	if d := rep.ServerDelta["plcsrv_submissions_total"]; d != 6 {
		t.Errorf("server submissions delta = %v, want 6", d)
	}
	if rep.ServerDelta["plcsrv_cache_hits_total"]+rep.ServerDelta["plcsrv_coalesced_total"] < 4 {
		t.Errorf("server-side hits+coalesces = %v+%v, want ≥ 4",
			rep.ServerDelta["plcsrv_cache_hits_total"], rep.ServerDelta["plcsrv_coalesced_total"])
	}
}

// TestColdSeedsAllMiss pins the other end of the knob: hit-ratio 0
// gives every request a unique seed, so nothing is answered from the
// cache.
func TestColdSeedsAllMiss(t *testing.T) {
	addr := startServer(t)
	cfg := baseConfig(addr)
	cfg.requests = 4
	cfg.entries = loadSingle(t, writeSpec(t, t.TempDir(), "s.json"))

	rep, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 4 || rep.Cached != 0 || rep.Coalesced != 0 {
		t.Fatalf("completed/cached/coalesced = %d/%d/%d, want 4/0/0",
			rep.Completed, rep.Cached, rep.Coalesced)
	}
	if d := rep.ServerDelta["plcsrv_cache_hits_total"]; d != 0 {
		t.Errorf("server cache-hit delta = %v, want 0 with unique seeds", d)
	}
}

// TestMixWithCampaign pins the weighted-mix path end to end: a mix
// file referencing a scenario and a campaign (relative paths, comments)
// parses, both kinds submit to their endpoints, and all requests reach
// a terminal done state.
func TestMixWithCampaign(t *testing.T) {
	addr := startServer(t)
	dir := t.TempDir()
	writeSpec(t, dir, "s.json")
	writeCampaign(t, dir, "c.json")
	mix := filepath.Join(dir, "mix.txt")
	os.WriteFile(mix, []byte("# smoke mix\n3 s.json\n1 c.json\n"), 0o644)

	items, err := parseMixFile(mix)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := loadEntries(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].campaign || !entries[1].campaign {
		t.Fatalf("mix classification wrong: %+v", entries)
	}

	cfg := baseConfig(addr)
	cfg.requests = 8
	cfg.entries = entries
	rep, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 8 || rep.Errors != 0 {
		t.Fatalf("completed/errors = %d/%d, want 8/0", rep.Completed, rep.Errors)
	}
}

// TestOpenLoop pins the -rps discipline: a short fixed-rate run issues
// at least one request and finishes every one it issued.
func TestOpenLoop(t *testing.T) {
	addr := startServer(t)
	cfg := baseConfig(addr)
	cfg.requests = 0
	cfg.duration = 400 * time.Millisecond
	cfg.rps = 50
	cfg.hitRatio = 0.5
	cfg.entries = loadSingle(t, writeSpec(t, t.TempDir(), "s.json"))

	rep, err := run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("open loop issued no requests")
	}
	if got := rep.Completed + rep.Failed + rep.Rejected + rep.Errors; got != rep.Requests {
		t.Errorf("outcomes %d do not account for %d requests", got, rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("open loop saw %d transport errors", rep.Errors)
	}
}

// TestSeedJitterDeterministic pins the reproducibility claim: the
// request→seed mapping is a function of (-seed, index) alone.
func TestSeedJitterDeterministic(t *testing.T) {
	g1 := &generator{cfg: config{seed: 7, hitRatio: 0.5, hotSeeds: 4}}
	g2 := &generator{cfg: config{seed: 7, hitRatio: 0.5, hotSeeds: 4}}
	g1.hotPool = []uint64{1, 2, 3, 4}
	g2.hotPool = []uint64{1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		if a, b := g1.requestSeed(i), g2.requestSeed(i); a != b {
			t.Fatalf("seed for request %d not deterministic: %d vs %d", i, a, b)
		}
	}
	seen := map[uint64]bool{}
	g1.cfg.hitRatio = 0
	for i := 0; i < 100; i++ {
		s := g1.requestSeed(i)
		if seen[s] {
			t.Fatalf("cold seed collision at request %d", i)
		}
		seen[s] = true
	}
}
