// Command plcload drives a running plcsrv with synthetic load and
// reports client-side latency percentiles next to the server's own
// /metrics deltas — one tool to answer "what does this deployment do
// under N req/s?" and to exercise the serving stack end to end.
//
// Two loop disciplines:
//
//   - closed loop (default): -concurrency workers each submit, wait
//     for the job's terminal event, and immediately submit again —
//     throughput finds its own level;
//   - open loop (-rps > 0): submissions arrive on a fixed schedule
//     regardless of completions, the discipline that exposes queueing
//     collapse; -max-inflight caps outstanding requests, and arrivals
//     beyond the cap are counted as shed, never silently dropped.
//
// The workload is a weighted spec mix (-spec for a single file, -mix
// for a weighted list) reusing the repository's examples/scenarios and
// examples/campaigns files verbatim; a top-level "base" object marks a
// campaign. Per request the spec's seed is rewritten from a
// deterministic jitter stream (repro/internal/rng, -seed): with
// probability -hit-ratio the seed comes from a small hot pool of
// -hot-seeds values (repeats hit the server's result cache), otherwise
// it is unique to the request (forcing a fresh simulation). The mix of
// cache hits, coalesces and misses is therefore reproducible run to
// run.
//
// plcload scrapes GET /metrics before and after the run and prints the
// per-family deltas, so client-observed latency and server-side
// counters (submissions, cache hits, coalesces, rejections) can be
// read side by side. -json emits the whole report as one JSON object.
//
// Typical sessions:
//
//	plcload -addr 127.0.0.1:8277 -spec examples/scenarios/heterogeneous.json \
//	        -concurrency 8 -duration 30s -hit-ratio 0.5
//	plcload -addr 127.0.0.1:8277 -mix mix.txt -rps 50 -requests 500 -json
//
// where mix.txt holds "weight path" lines:
//
//	4 examples/scenarios/poisson-load.json
//	1 examples/campaigns/model-cw-grid.json
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "plcload:", err)
		os.Exit(2)
	}
	rep, err := run(cfg, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plcload:", err)
		os.Exit(1)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		rep.renderText(os.Stdout)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// config is the parsed command line.
type config struct {
	addr        string
	entries     []specEntry
	requests    int
	duration    time.Duration
	concurrency int
	rps         float64
	maxInflight int
	reps        int
	hitRatio    float64
	hotSeeds    int
	seed        uint64
	timeout     time.Duration
	jsonOut     bool
}

// specEntry is one weighted workload item.
type specEntry struct {
	path     string
	weight   int
	raw      []byte
	campaign bool
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("plcload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8277", "plcsrv address (host:port or URL)")
		specPath    = fs.String("spec", "", "single scenario/campaign JSON file to submit")
		mixPath     = fs.String("mix", "", "weighted spec-mix file: \"weight path\" lines, paths relative to the file")
		requests    = fs.Int("requests", 0, "stop after this many submissions (0 = until -duration)")
		duration    = fs.Duration("duration", 10*time.Second, "stop after this long (0 = until -requests)")
		concurrency = fs.Int("concurrency", 4, "closed-loop workers (ignored when -rps > 0)")
		rps         = fs.Float64("rps", 0, "open-loop arrival rate in requests/second (0 = closed loop)")
		maxInflight = fs.Int("max-inflight", 256, "open-loop cap on outstanding requests; arrivals beyond it are counted as shed")
		reps        = fs.Int("reps", 3, "replications per scenario submission")
		hitRatio    = fs.Float64("hit-ratio", 0, "probability a request reuses a hot-pool seed (cache-hit candidates), in [0,1]")
		hotSeeds    = fs.Int("hot-seeds", 8, "size of the hot seed pool")
		seed        = fs.Uint64("seed", 1, "base seed of the jitter stream (the whole workload is a function of it)")
		timeout     = fs.Duration("timeout", 60*time.Second, "per-request budget, submission through terminal event")
		jsonOut     = fs.Bool("json", false, "emit the report as JSON on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	cfg := config{
		addr: *addr, requests: *requests, duration: *duration,
		concurrency: *concurrency, rps: *rps, maxInflight: *maxInflight,
		reps: *reps, hitRatio: *hitRatio, hotSeeds: *hotSeeds,
		seed: *seed, timeout: *timeout, jsonOut: *jsonOut,
	}
	if (*specPath == "") == (*mixPath == "") {
		return config{}, fmt.Errorf("exactly one of -spec or -mix is required")
	}
	var err error
	if *specPath != "" {
		cfg.entries, err = loadEntries([]weighted{{1, *specPath}})
	} else {
		var items []weighted
		if items, err = parseMixFile(*mixPath); err == nil {
			cfg.entries, err = loadEntries(items)
		}
	}
	if err != nil {
		return config{}, err
	}
	return cfg, cfg.validate()
}

func (c config) validate() error {
	if c.requests <= 0 && c.duration <= 0 {
		return fmt.Errorf("need -requests > 0 or -duration > 0")
	}
	if c.hitRatio < 0 || c.hitRatio > 1 {
		return fmt.Errorf("-hit-ratio %g outside [0,1]", c.hitRatio)
	}
	if c.hotSeeds <= 0 {
		return fmt.Errorf("-hot-seeds must be positive")
	}
	if c.rps == 0 && c.concurrency <= 0 {
		return fmt.Errorf("-concurrency must be positive in closed-loop mode")
	}
	if c.rps > 0 && c.maxInflight <= 0 {
		return fmt.Errorf("-max-inflight must be positive in open-loop mode")
	}
	if c.reps <= 0 {
		return fmt.Errorf("-reps must be positive")
	}
	return nil
}

// weighted is a pre-load mix line.
type weighted struct {
	weight int
	path   string
}

// parseMixFile reads "weight path" lines; '#' starts a comment, blank
// lines are skipped, paths are resolved relative to the mix file.
func parseMixFile(path string) ([]weighted, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dir := filepath.Dir(path)
	var out []weighted
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"weight path\", got %q", path, line, sc.Text())
		}
		w, err := strconv.Atoi(fields[0])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("%s:%d: weight %q must be a positive integer", path, line, fields[0])
		}
		p := fields[1]
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		out = append(out, weighted{w, p})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: empty mix", path)
	}
	return out, nil
}

// loadEntries reads each mix item and classifies it: a top-level
// "base" object marks a campaign (the examples/campaigns schema),
// anything else is treated as a scenario spec.
func loadEntries(items []weighted) ([]specEntry, error) {
	out := make([]specEntry, 0, len(items))
	for _, it := range items {
		raw, err := os.ReadFile(it.path)
		if err != nil {
			return nil, err
		}
		var probe struct {
			Base json.RawMessage `json:"base"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("%s: %w", it.path, err)
		}
		out = append(out, specEntry{
			path: it.path, weight: it.weight, raw: raw,
			campaign: len(probe.Base) > 0,
		})
	}
	return out, nil
}

// Report is the run summary, printed as text or JSON.
type Report struct {
	Requests  int     `json:"requests"`
	Completed int     `json:"completed"`
	Cached    int     `json:"cached"`
	Coalesced int     `json:"coalesced"`
	Rejected  int     `json:"rejected"`
	Failed    int     `json:"failed"`
	Errors    int     `json:"errors"`
	Shed      int     `json:"shed"`
	DurationS float64 `json:"duration_s"`
	// AchievedRPS counts submissions actually issued (shed excluded).
	AchievedRPS float64 `json:"achieved_rps"`
	// Latency summarises client-observed end-to-end times (submission
	// to terminal event; a cached answer is one round trip) for requests
	// that reached a terminal state.
	Latency LatencySummary `json:"latency_ms"`
	// ServerDelta maps /metrics counter families to their per-run
	// increase, summed over label sets. Empty when a scrape failed.
	ServerDelta map[string]float64 `json:"server_delta,omitempty"`
}

// LatencySummary holds millisecond percentiles over the run.
type LatencySummary struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

func (r *Report) renderText(w io.Writer) {
	fmt.Fprintf(w, "plcload: %d requests in %.1fs (%.1f req/s)\n", r.Requests, r.DurationS, r.AchievedRPS)
	fmt.Fprintf(w, "  completed %d  cached %d  coalesced %d  rejected %d  failed %d  errors %d  shed %d\n",
		r.Completed, r.Cached, r.Coalesced, r.Rejected, r.Failed, r.Errors, r.Shed)
	fmt.Fprintf(w, "  latency ms: p50 %.2f  p90 %.2f  p99 %.2f  mean %.2f  max %.2f\n",
		r.Latency.P50, r.Latency.P90, r.Latency.P99, r.Latency.Mean, r.Latency.Max)
	if len(r.ServerDelta) > 0 {
		names := make([]string, 0, len(r.ServerDelta))
		for name := range r.ServerDelta {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "  server:")
		for _, name := range names {
			fmt.Fprintf(w, " %s +%g", name, r.ServerDelta[name])
		}
		fmt.Fprintln(w)
	}
}

// deltaFamilies are the counter families whose before/after difference
// the report prints (summed across label sets).
var deltaFamilies = []string{
	"plcsrv_submissions_total",
	"plcsrv_jobs_finished_total",
	"plcsrv_cache_hits_total",
	"plcsrv_coalesced_total",
	"plcsrv_rejected_total",
}

// run executes the configured load and returns the report. Warnings
// (failed scrapes) go to warnw; the report goes to the caller.
func run(cfg config, warnw io.Writer) (*Report, error) {
	base := cfg.addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	before, err := scrapeMetrics(base)
	if err != nil {
		fmt.Fprintf(warnw, "plcload: pre-run /metrics scrape failed: %v\n", err)
	}

	g := &generator{cfg: cfg, base: base, client: &http.Client{}}
	g.hotPool = make([]uint64, cfg.hotSeeds)
	src := rng.New(cfg.seed)
	for i := range g.hotPool {
		g.hotPool[i] = src.Split(uint64(i)).Uint64()
	}

	start := time.Now()
	if cfg.rps > 0 {
		g.openLoop()
	} else {
		g.closedLoop()
	}
	elapsed := time.Since(start)

	rep := g.report(elapsed)
	after, err := scrapeMetrics(base)
	if err != nil {
		fmt.Fprintf(warnw, "plcload: post-run /metrics scrape failed: %v\n", err)
	}
	if before != nil && after != nil {
		rep.ServerDelta = map[string]float64{}
		for _, name := range deltaFamilies {
			rep.ServerDelta[name] = familySum(after, name) - familySum(before, name)
		}
	}
	return rep, nil
}

// scrapeMetrics fetches and parses GET /metrics.
func scrapeMetrics(base string) (map[string]*obs.ParsedFamily, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// familySum adds every plain sample of one family (0 when absent).
func familySum(fams map[string]*obs.ParsedFamily, name string) float64 {
	f := fams[name]
	if f == nil {
		return 0
	}
	var sum float64
	for _, s := range f.Samples {
		if s.Name == name { // skip _bucket/_sum/_count expansions
			sum += s.Value
		}
	}
	return sum
}

// generator owns the shared run state.
type generator struct {
	cfg     config
	base    string
	client  *http.Client
	hotPool []uint64

	issued atomic.Int64 // submissions started (ticket counter)

	mu        sync.Mutex
	latencies []float64 // milliseconds, terminal requests only
	completed int
	cached    int
	coalesced int
	rejected  int
	failed    int
	errors    int
	shed      int
}

// ticket claims the next request index, or false when the -requests
// budget is exhausted.
func (g *generator) ticket() (int, bool) {
	n := g.issued.Add(1) - 1
	if g.cfg.requests > 0 && n >= int64(g.cfg.requests) {
		g.issued.Add(-1)
		return 0, false
	}
	return int(n), true
}

// deadline returns the run's wall-clock cutoff (zero = none).
func (g *generator) deadline(start time.Time) time.Time {
	if g.cfg.duration <= 0 {
		return time.Time{}
	}
	return start.Add(g.cfg.duration)
}

// closedLoop runs -concurrency workers, each submitting again the
// moment its previous request reaches a terminal state.
func (g *generator) closedLoop() {
	start := time.Now()
	stop := g.deadline(start)
	var wg sync.WaitGroup
	for w := 0; w < g.cfg.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if !stop.IsZero() && !time.Now().Before(stop) {
					return
				}
				idx, ok := g.ticket()
				if !ok {
					return
				}
				g.doRequest(idx)
			}
		}()
	}
	wg.Wait()
}

// openLoop submits on a fixed schedule at -rps, independent of
// completions; arrivals past -max-inflight are shed.
func (g *generator) openLoop() {
	start := time.Now()
	stop := g.deadline(start)
	interval := time.Duration(float64(time.Second) / g.cfg.rps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	var inflight atomic.Int64
	var wg sync.WaitGroup
	for {
		<-ticker.C
		if !stop.IsZero() && !time.Now().Before(stop) {
			break
		}
		idx, ok := g.ticket()
		if !ok {
			break
		}
		if inflight.Load() >= int64(g.cfg.maxInflight) {
			// The ticket is burned, not returned: indices stay unique so
			// jittered seeds never collide by accident.
			g.mu.Lock()
			g.shed++
			g.mu.Unlock()
			continue
		}
		inflight.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer inflight.Add(-1)
			g.doRequest(idx)
		}()
	}
	wg.Wait()
}

// requestSeed derives request idx's seed: hot-pool with probability
// -hit-ratio, unique otherwise. Deterministic in (cfg.seed, idx).
func (g *generator) requestSeed(idx int) uint64 {
	r := rng.New(g.cfg.seed).Split(1<<32 + uint64(idx))
	if float64(r.Intn(1_000_000)) < g.cfg.hitRatio*1_000_000 {
		return g.hotPool[r.Intn(len(g.hotPool))]
	}
	return r.Uint64()
}

// pickEntry selects the workload item for request idx by weight,
// deterministically in (cfg.seed, idx).
func (g *generator) pickEntry(idx int) specEntry {
	if len(g.cfg.entries) == 1 {
		return g.cfg.entries[0]
	}
	total := 0
	for _, e := range g.cfg.entries {
		total += e.weight
	}
	r := rng.New(g.cfg.seed).Split(2<<32 + uint64(idx))
	n := r.Intn(total)
	for _, e := range g.cfg.entries {
		if n < e.weight {
			return e
		}
		n -= e.weight
	}
	return g.cfg.entries[len(g.cfg.entries)-1]
}

// jitterSpec rewrites the entry's seed field (base.seed for campaigns)
// and returns the document ready for embedding in a request body. All
// other numbers pass through as json.Number, byte-exact.
func jitterSpec(e specEntry, seed uint64) (map[string]any, error) {
	dec := json.NewDecoder(bytes.NewReader(e.raw))
	dec.UseNumber()
	var doc map[string]any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %w", e.path, err)
	}
	if e.campaign {
		inner, ok := doc["base"].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("%s: campaign \"base\" is not an object", e.path)
		}
		inner["seed"] = seed
	} else {
		doc["seed"] = seed
	}
	return doc, nil
}

// doRequest submits one job and follows it to a terminal state,
// recording the outcome and the client-observed latency.
func (g *generator) doRequest(idx int) {
	e := g.pickEntry(idx)
	doc, err := jitterSpec(e, g.requestSeed(idx))
	if err != nil {
		g.record(outcomeError, 0, false, false)
		return
	}
	var body any
	path := "/v1/jobs"
	if e.campaign {
		body = map[string]any{"campaign": doc}
		path = "/v1/campaigns"
	} else {
		body = map[string]any{"spec": doc, "reps": g.cfg.reps}
	}
	payload, err := json.Marshal(body)
	if err != nil {
		g.record(outcomeError, 0, false, false)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.timeout)
	defer cancel()
	start := time.Now()
	req, _ := http.NewRequestWithContext(ctx, "POST", g.base+path, bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		g.record(outcomeError, 0, false, false)
		return
	}
	var sub struct {
		ID        string `json:"id"`
		Cached    bool   `json:"cached"`
		Coalesced bool   `json:"coalesced"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		g.record(outcomeRejected, 0, false, false)
		return
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted:
		g.record(outcomeError, 0, false, false)
		return
	case decErr != nil:
		g.record(outcomeError, 0, false, false)
		return
	}
	if sub.Cached {
		g.record(outcomeDone, time.Since(start), true, false)
		return
	}
	state, err := g.awaitTerminal(ctx, path, sub.ID)
	lat := time.Since(start)
	switch {
	case err != nil:
		g.record(outcomeError, 0, false, false)
	case state == "done":
		g.record(outcomeDone, lat, false, sub.Coalesced)
	default:
		g.record(outcomeFailed, lat, false, false)
	}
}

// awaitTerminal follows the job's NDJSON event stream to its terminal
// line.
func (g *generator) awaitTerminal(ctx context.Context, path, id string) (string, error) {
	req, _ := http.NewRequestWithContext(ctx, "GET", g.base+path+"/"+id+"/events", nil)
	resp, err := g.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return "", err
		}
		switch ev.State {
		case "done", "failed", "cancelled", "timed_out":
			return ev.State, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("event stream for %s ended without a terminal state", id)
}

type outcome int

const (
	outcomeDone outcome = iota
	outcomeFailed
	outcomeRejected
	outcomeError
)

func (g *generator) record(o outcome, lat time.Duration, cached, coalesced bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch o {
	case outcomeDone:
		g.completed++
		g.latencies = append(g.latencies, float64(lat)/float64(time.Millisecond))
		if cached {
			g.cached++
		}
		if coalesced {
			g.coalesced++
		}
	case outcomeFailed:
		g.failed++
		g.latencies = append(g.latencies, float64(lat)/float64(time.Millisecond))
	case outcomeRejected:
		g.rejected++
	case outcomeError:
		g.errors++
	}
}

func (g *generator) report(elapsed time.Duration) *Report {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep := &Report{
		Requests:  int(g.issued.Load()) - g.shed,
		Completed: g.completed, Cached: g.cached, Coalesced: g.coalesced,
		Rejected: g.rejected, Failed: g.failed, Errors: g.errors, Shed: g.shed,
		DurationS: elapsed.Seconds(),
	}
	if rep.DurationS > 0 {
		rep.AchievedRPS = float64(rep.Requests) / rep.DurationS
	}
	rep.Latency = summarize(g.latencies)
	return rep
}

// summarize computes percentiles over a copy of the samples.
func summarize(samples []float64) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return LatencySummary{
		P50:  percentile(s, 0.50),
		P90:  percentile(s, 0.90),
		P99:  percentile(s, 0.99),
		Mean: sum / float64(len(s)),
		Max:  s[len(s)-1],
	}
}

// percentile reads the nearest-rank percentile from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
