// Command ampstat reimplements the statistics workflow of the Atheros
// Open Powerline Toolkit tool of the same name against the emulated
// power strip (cmd/plcd): reset or fetch the acknowledged/collided
// MPDU counters of a link through the vendor MME with MMType 0xA030,
// and compute the collision probability ΣCᵢ/ΣAᵢ across stations as the
// paper does in Section 3.2.
//
// Operations:
//
//	-op reset      reset the tx counters (one device, or -all)
//	-op fetch      print the tx counters (one device, or -all)
//	-op collision  fetch all stations and print ΣC, ΣA and ΣC/ΣA
//	-op run        advance the emulator's virtual clock by -duration
//
// Station addressing follows plcd's startup output; -all iterates the
// conventional station addresses for -n stations.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/hpav"
	"repro/internal/testbed"
)

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"ampstat:"}, args...)...)
	os.Exit(1)
}

func main() {
	var (
		host     = flag.String("host", "127.0.0.1:5277", "UDP address of plcd")
		op       = flag.String("op", "fetch", "reset | fetch | collision | run")
		devFlag  = flag.String("device", "", "target device MAC (aa:bb:cc:dd:ee:ff)")
		peerFlag = flag.String("peer", testbed.DstAddr.String(), "link peer MAC (destination D)")
		priFlag  = flag.String("priority", "CA1", "priority class of the link")
		all      = flag.Bool("all", false, "apply to all -n conventional station addresses")
		n        = flag.Int("n", 2, "station count for -all")
		duration = flag.Float64("duration", 240, "run duration in seconds (op=run)")
	)
	flag.Parse()

	cli, err := device.Dial(*host)
	if err != nil {
		fatal(err)
	}
	defer cli.Close()

	pri, err := config.ParsePriority(*priFlag)
	if err != nil {
		fatal(err)
	}
	peer, err := hpav.ParseMAC(*peerFlag)
	if err != nil {
		fatal("-peer:", err)
	}

	targets := func() []hpav.MAC {
		if *all {
			out := make([]hpav.MAC, *n)
			for i := range out {
				out[i] = testbed.StationAddr(i)
			}
			return out
		}
		if *devFlag == "" {
			fatal("need -device or -all")
		}
		m, err := hpav.ParseMAC(*devFlag)
		if err != nil {
			fatal("-device:", err)
		}
		return []hpav.MAC{m}
	}

	switch *op {
	case "reset":
		for _, t := range targets() {
			if err := cli.ResetLink(t, peer, pri); err != nil {
				fatal("reset", t, ":", err)
			}
			fmt.Printf("reset %s → %s (%s)\n", t, peer, pri)
		}

	case "fetch":
		for _, t := range targets() {
			c, err := cli.FetchLink(t, peer, pri)
			if err != nil {
				fatal("fetch", t, ":", err)
			}
			fmt.Printf("%s → %s (%s): acked=%d collided=%d\n", t, peer, pri, c.Acked, c.Collided)
		}

	case "collision":
		var sumC, sumA uint64
		for _, t := range targets() {
			c, err := cli.FetchLink(t, peer, pri)
			if err != nil {
				fatal("fetch", t, ":", err)
			}
			sumC += c.Collided
			sumA += c.Acked
		}
		fmt.Printf("sum_collided = %d\n", sumC)
		fmt.Printf("sum_acked    = %d\n", sumA)
		if sumA > 0 {
			fmt.Printf("collision_pr = %.6f\n", float64(sumC)/float64(sumA))
		} else {
			fmt.Println("collision_pr = n/a (no acknowledged frames)")
		}

	case "run":
		clock, err := cli.Run(uint64(*duration * 1e6))
		if err != nil {
			fatal("run:", err)
		}
		fmt.Printf("virtual clock now %.3f s\n", float64(clock)/1e6)

	default:
		fatal("unknown -op", *op)
	}
}
