package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkMACNetwork-4   	    2882	    407944 ns/op	   12345 B/op	      67 allocs/op
BenchmarkEngineIdleFastForward-4   	   61230	     19607 ns/op	        51.03 simulated-µs/ns	       0 B/op	       0 allocs/op
BenchmarkNoMem   	     100	      1000 ns/op
PASS
ok  	repro	3.456s
`

func TestConvert(t *testing.T) {
	var out bytes.Buffer
	if err := Convert(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("header = %+v", f)
	}
	if len(f.Runs) != 3 {
		t.Fatalf("parsed %d runs, want 3", len(f.Runs))
	}
	r := f.Runs[0]
	if r.Name != "BenchmarkMACNetwork" || r.Procs != 4 || r.Pkg != "repro" ||
		r.Iterations != 2882 || r.NsPerOp != 407944 || r.BPerOp != 12345 || r.AllocsPerOp != 67 {
		t.Errorf("run 0 = %+v", r)
	}
	if got := f.Runs[1].Metrics["simulated-µs/ns"]; got != 51.03 {
		t.Errorf("custom metric = %v, want 51.03", got)
	}
	// Without -benchmem the memory columns are absent, not zero.
	if f.Runs[2].BPerOp != -1 || f.Runs[2].AllocsPerOp != -1 {
		t.Errorf("run without -benchmem = %+v", f.Runs[2])
	}
	// A benchmark name with no GOMAXPROCS suffix keeps procs=1.
	if f.Runs[2].Procs != 1 || f.Runs[2].Name != "BenchmarkNoMem" {
		t.Errorf("suffixless run = %+v", f.Runs[2])
	}
	// The raw text survives verbatim for benchstat.
	if f.Raw != sample {
		t.Error("raw text is not verbatim input")
	}
}

func TestConvertRejectsEmpty(t *testing.T) {
	var out bytes.Buffer
	if err := Convert(strings.NewReader("PASS\nok  repro 0.1s\n"), &out); err == nil {
		t.Fatal("no benchmark lines must be an error, not an empty baseline")
	}
}
