// Command benchjson converts `go test -bench` text output (stdin) into
// BENCH_results.json (stdout): one record per benchmark run, plus the
// verbatim raw text so benchstat — which consumes the text format —
// can still be applied downstream:
//
//	go test -run=XXX -bench=. -benchmem -count=3 ./... > bench.out
//	benchjson < bench.out > BENCH_results.json
//	# later: jq -r .raw BENCH_results.json | benchstat old.txt /dev/stdin
//
// With -count > 1 every run appears as its own record (same name,
// multiple entries), which is exactly the sample structure benchstat
// statistics need. `make bench` wires the whole pipeline.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Run is one benchmark execution line.
type Run struct {
	// Name is the full benchmark name without the -P GOMAXPROCS
	// suffix; Procs carries that suffix.
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Pkg is the package the benchmark lives in (from the "pkg:"
	// header preceding it).
	Pkg        string  `json:"pkg,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BPerOp and AllocsPerOp are present with -benchmem (-1 without).
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any further unit pairs (MB/s, custom b.ReportMetric
	// units such as simulated-µs/ns), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_results.json schema.
type File struct {
	Format string `json:"format"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Runs   []Run  `json:"runs"`
	// Raw is the untouched `go test -bench` output — the input
	// benchstat consumes.
	Raw string `json:"raw"`
}

// parseLine decodes one "BenchmarkX-8 N unit-pairs..." line, or
// ok=false for anything else.
func parseLine(line, pkg string) (Run, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Run{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Run{}, false
	}
	r := Run{Name: name, Procs: procs, Pkg: pkg, Iterations: iters, NsPerOp: -1, BPerOp: -1, AllocsPerOp: -1}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Run{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	if r.NsPerOp < 0 {
		return Run{}, false
	}
	return r, true
}

// Convert parses the bench text and renders the JSON file.
func Convert(in io.Reader, out io.Writer) error {
	f := File{Format: "go-bench-v1"}
	var raw strings.Builder
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		raw.WriteString(line + "\n")
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		default:
			if r, ok := parseLine(line, pkg); ok {
				f.Runs = append(f.Runs, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines in input")
	}
	f.Raw = raw.String()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

func main() {
	if err := Convert(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
