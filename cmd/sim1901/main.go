// Command sim1901 is the CLI form of the paper's simulator entry point
//
//	sim_1901(N, sim_time, Tc, Ts, frame_length, cw, dc)
//
// with the same inputs (Table 3 of the paper) and the same two outputs:
// the collision probability and the normalized throughput. The paper's
// example invocation translates to
//
//	sim1901 -n 2 -sim-time 5e8 -tc 2920.64 -ts 2542.64 \
//	        -frame-length 2050 -cw 8,16,32,64 -dc 0,1,3,15
//
// which is also the flag default, so `sim1901 -n 2` suffices.
//
// -n also accepts a comma-separated sweep ("-n 1,2,5,10"), printing one
// result block per station count; -parallel fans the sweep points across
// GOMAXPROCS goroutines. Each point owns its random streams and results
// print in input order, so parallel output is bit-identical to serial.
//
// The declarative mode replaces the flag soup with a scenario file:
//
//	sim1901 -scenario examples/scenarios/heterogeneous.json -reps 10 -parallel
//
// runs R independent-seed replications of the scenario (sharded across
// GOMAXPROCS with -parallel, bit-identical to serial) and prints each
// metric's mean ± 95% confidence interval. -validate parses and
// compiles the scenario without running it.
//
// -engine overrides the scenario's engine; in particular
//
//	sim1901 -scenario f.json -engine model
//
// answers the scenario analytically through the decoupling-model fixed
// point (microseconds per point, deterministic: replications collapse
// to n=1), and
//
//	sim1901 -scenario f.json -compare -reps 10
//
// runs both the model and the simulator and prints the per-metric
// divergence — the model-accuracy study in CLI form.
//
// -vr toggles control-variate variance reduction on the scenario
// without editing the file:
//
//	sim1901 -scenario f.json -reps 20 -vr cv
//
// pairs every replication with an exactly-computed zero-mean control
// and prints the regression-adjusted estimate next to the raw interval
// ("cv ×12.3"); `-vr none` strips a spec's variance_reduction block.
// The simulated trajectories are bit-identical either way (the controls
// consume no randomness), only the estimator changes.
//
// Campaign mode runs a whole family of scenarios from one file:
//
//	sim1901 -campaign examples/campaigns/saturation-error-grid.json -parallel
//
// expands the campaign's axis cross-product into concrete scenarios
// (station count × channel error rate × …), runs each point's
// replications — fixed, or adaptive against per-metric confidence
// targets — and prints one consolidated table, one row per grid point
// with its converged replication count. -validate parses, expands and
// compiles the campaign without running it.
//
// -compare combines with -campaign to run every grid point through
// both the analytic model and a simulator:
//
//	sim1901 -campaign examples/campaigns/model-envelope-load.json -compare -parallel
//
// prints a campaign-wide per-metric divergence table (mean/max
// relative and absolute error, worst grid point named) followed by
// each point's model/sim/delta lines — the accuracy-envelope study in
// CLI form.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// runCampaign is the grid mode: load, expand, run every point, print
// the consolidated table. compare runs every grid point through both
// the analytic model and a simulator and prints the campaign-wide
// divergence study instead.
func runCampaign(path string, parallel, validateOnly, compare bool) {
	spec, err := campaign.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(2)
	}
	c, err := campaign.Compile(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(2)
	}
	if validateOnly {
		fmt.Println("ok:", c.Describe())
		return
	}
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	if compare {
		rep, err := campaign.CompareRun(c, campaign.Opts{Workers: workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sim1901:", err)
			os.Exit(2)
		}
		if err := rep.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sim1901:", err)
			os.Exit(1)
		}
		return
	}
	report, err := campaign.Run(c, campaign.Opts{Workers: workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(2)
	}
	if err := report.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(1)
	}
}

// runScenario is the declarative mode: load, compile, replicate, print.
// engine, when non-empty, overrides the spec's engine field; compare
// runs the model-vs-simulation divergence study instead of one report.
func runScenario(path string, reps int, parallel, validateOnly bool, engine string, compare bool, vr string) {
	spec, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(2)
	}
	if engine != "" {
		spec.Engine = engine
	}
	switch vr {
	case "":
		// Keep whatever the spec declares.
	case "none", "off":
		spec.VarianceReduction = nil
	case "cv", scenario.VRControlVariate:
		spec.VarianceReduction = &scenario.VarianceReduction{Kind: scenario.VRControlVariate}
	default:
		fmt.Fprintf(os.Stderr, "sim1901: -vr %q: want control_variate (or cv) or none\n", vr)
		os.Exit(2)
	}
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	if validateOnly {
		// -validate always means parse-compile-and-exit, even when
		// combined with -compare: never start a potentially long study.
		c, err := scenario.Compile(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sim1901:", err)
			os.Exit(2)
		}
		fmt.Println("ok:", c.Describe())
		return
	}
	if compare {
		cmp, err := scenario.Compare(spec, reps, workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sim1901:", err)
			os.Exit(2)
		}
		if err := cmp.Write(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sim1901:", err)
			os.Exit(1)
		}
		return
	}
	c, err := scenario.Compile(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(2)
	}
	report, err := scenario.Replications(c, reps, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(2)
	}
	if err := report.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(1)
	}
}

func parseIntVector(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad vector element %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		nFlag       = flag.String("n", "2", "number of saturated stations, or a comma-separated sweep (e.g. 1,2,5,10)")
		simTime     = flag.Float64("sim-time", 5e8, "total simulation time in µs")
		tc          = flag.Float64("tc", 2920.64, "collision duration in µs")
		ts          = flag.Float64("ts", 2542.64, "successful transmission duration in µs")
		frameLength = flag.Float64("frame-length", 2050, "frame duration in µs (payload only)")
		cwFlag      = flag.String("cw", "8,16,32,64", "contention window per backoff stage")
		dcFlag      = flag.String("dc", "0,1,3,15", "initial deferral counter per backoff stage")
		seed        = flag.Uint64("seed", 1, "random seed (equal seeds reproduce runs exactly)")
		parallel    = flag.Bool("parallel", false, "run sweep points on GOMAXPROCS goroutines (bit-identical output)")
		verbose     = flag.Bool("v", false, "also print per-station statistics")
		scenarioF   = flag.String("scenario", "", "declarative scenario JSON file (replaces -n/-cw/-dc/...)")
		campaignF   = flag.String("campaign", "", "declarative campaign JSON file: a base scenario swept over axis cross-products")
		reps        = flag.Int("reps", 10, "independent-seed replications per scenario point (with -scenario)")
		validate    = flag.Bool("validate", false, "parse and compile -scenario/-campaign, report, and exit without running")
		engine      = flag.String("engine", "", "override the scenario's engine: sim, mac, model or auto (with -scenario)")
		compare     = flag.Bool("compare", false, "run -scenario (or every -campaign grid point) through both the analytic model and the simulator and print per-metric divergence")
		vrFlag      = flag.String("vr", "", "variance reduction for -scenario: control_variate (or cv) enables the paired-control estimator, none strips the spec's block")
	)
	flag.Parse()

	if *campaignF != "" && *scenarioF != "" {
		fmt.Fprintln(os.Stderr, "sim1901: -scenario and -campaign are mutually exclusive")
		os.Exit(2)
	}
	if *campaignF != "" {
		// A campaign file owns its engine and replication policy; a
		// flag that silently did nothing would be worse than an error.
		// -compare is the exception: it is a run mode, not a spec knob.
		repsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "reps" {
				repsSet = true
			}
		})
		if *engine != "" || repsSet || *vrFlag != "" {
			fmt.Fprintln(os.Stderr, "sim1901: -engine, -reps and -vr do not apply to -campaign (set the engine, replication policy and variance reduction in the campaign file)")
			os.Exit(2)
		}
		runCampaign(*campaignF, *parallel, *validate, *compare)
		return
	}
	if *scenarioF != "" {
		if *reps < 1 {
			// Fail fast, naming the flag: asking for zero or negative
			// replications is always a harness mistake.
			fmt.Fprintf(os.Stderr, "sim1901: -reps = %d: replications must be ≥ 1\n", *reps)
			os.Exit(2)
		}
		runScenario(*scenarioF, *reps, *parallel, *validate, *engine, *compare, *vrFlag)
		return
	}
	if *validate || *engine != "" || *compare || *vrFlag != "" {
		fmt.Fprintln(os.Stderr, "sim1901: -validate, -engine, -compare and -vr require -scenario (or -campaign)")
		os.Exit(2)
	}

	ns, err := parseIntVector(*nFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901: -n:", err)
		os.Exit(2)
	}
	cw, err := parseIntVector(*cwFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901: -cw:", err)
		os.Exit(2)
	}
	dc, err := parseIntVector(*dcFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901: -dc:", err)
		os.Exit(2)
	}

	// Validate every point up front so that bad input fails before any
	// simulation time is spent.
	inputs := make([]sim.Inputs, len(ns))
	for i, n := range ns {
		inputs[i] = sim.Inputs{
			N: n, SimTime: *simTime, Tc: *tc, Ts: *ts, FrameLength: *frameLength,
			Params: config.Params{Name: "cli", CW: cw, DC: dc}, Seed: *seed,
		}
		if err := inputs[i].Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "sim1901:", err)
			os.Exit(2)
		}
	}

	workers := 1
	if *parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	results, err := par.Map(workers, inputs, func(_ int, in sim.Inputs) (sim.Result, error) {
		e, err := sim.NewEngine(in)
		if err != nil {
			return sim.Result{}, err
		}
		return e.Run(), nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sim1901:", err)
		os.Exit(2)
	}

	for i, r := range results {
		if len(ns) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("# N = %d\n", ns[i])
		}
		fmt.Printf("collision_pr     = %.6f\n", r.CollisionProbability)
		fmt.Printf("norm_throughput  = %.6f\n", r.NormalizedThroughput)
		if *verbose {
			fmt.Printf("successes        = %d\n", r.Successes)
			fmt.Printf("collided_frames  = %d\n", r.CollidedFrames)
			fmt.Printf("collision_events = %d\n", r.CollisionEvents)
			fmt.Printf("idle_slots       = %d\n", r.IdleSlots)
			fmt.Printf("elapsed_us       = %.2f\n", r.Elapsed)
			for j, s := range r.PerStation {
				fmt.Printf("station %d: acked=%d collided=%d deferrals=%d redraws=%d\n",
					j, s.Acked(), s.Collided, s.Deferrals, s.Redraws)
			}
		}
	}
}
