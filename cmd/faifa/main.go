// Command faifa reimplements the sniffer workflow of the faifa tool
// against the emulated power strip: enable the device's sniffer mode
// (vendor MME 0xA034), receive the SoF delimiters of every PLC frame
// as live indications, print their fields, and summarize the trace the
// way Section 3.3 of the paper does — bursts delimited by MPDUCnt = 0,
// management traffic identified by the LinkID priority, MME overhead
// as MME bursts over data bursts, and the per-source burst counts used
// by the fairness study.
//
// Typical session (against a running plcd):
//
//	faifa -host 127.0.0.1:5277 -duration 240 -print=false
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/hpav"
	"repro/internal/testbed"
)

func fatal(args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"faifa:"}, args...)...)
	os.Exit(1)
}

func main() {
	var (
		host     = flag.String("host", "127.0.0.1:5277", "UDP address of plcd")
		devFlag  = flag.String("device", testbed.DstAddr.String(), "device whose sniffer to enable (default: destination D)")
		duration = flag.Float64("duration", 10, "virtual test duration in seconds")
		print    = flag.Bool("print", false, "print every captured SoF delimiter")
		maxCaps  = flag.Int("max", 0, "stop after this many captures (0 = unlimited)")
	)
	flag.Parse()

	target, err := hpav.ParseMAC(*devFlag)
	if err != nil {
		fatal("-device:", err)
	}

	// Two endpoints on purpose: the capture client subscribes to the
	// indication stream; the control client advances the clock without
	// its confirmations racing the indications.
	capCli, err := device.Dial(*host)
	if err != nil {
		fatal(err)
	}
	defer capCli.Close()
	ctlCli, err := device.Dial(*host)
	if err != nil {
		fatal(err)
	}
	defer ctlCli.Close()

	if _, err := capCli.Sniffer(target, hpav.SnifferEnable); err != nil {
		fatal("enable sniffer:", err)
	}
	defer capCli.Sniffer(target, hpav.SnifferDisable)

	done := make(chan []hpav.SnifferInd, 1)
	go func() {
		caps, err := capCli.ReadCaptures(*maxCaps, 2*time.Second)
		if err != nil {
			fatal("captures:", err)
		}
		done <- caps
	}()

	if _, err := ctlCli.Run(uint64(*duration * 1e6)); err != nil {
		fatal("run:", err)
	}
	caps := <-done

	if *print {
		for _, c := range caps {
			fmt.Printf("t=%-12d stei=%-3d dtei=%-3d lid=%s mpducnt=%d pbs=%-3d fl=%.0fµs burst=%d\n",
				c.TimestampMicros, c.SoF.STEI, c.SoF.DTEI, c.SoF.LinkID,
				c.SoF.MPDUCnt, c.SoF.PBCount, c.SoF.DurationMicros(), c.SoF.BurstID)
		}
	}

	a, err := testbed.AnalyzeCaptures(caps, config.CA1)
	if err != nil {
		fatal("analyze:", err)
	}
	fmt.Printf("captured MPDUs      = %d\n", a.MPDUs)
	fmt.Printf("data bursts         = %d\n", a.DataBursts)
	fmt.Printf("MME bursts          = %d\n", a.MgmtBursts)
	for size := 1; size <= hpav.MaxBurstMPDUs; size++ {
		fmt.Printf("bursts of %d MPDUs   = %d\n", size, a.BurstSizes[size])
	}
	fmt.Printf("dominant burst size = %d\n", a.DominantBurstSize())
	fmt.Printf("MME overhead        = %.6f\n", a.MMEOverhead())
	fmt.Println("data bursts per source:")
	teis := make([]int, 0, len(a.SourceBursts))
	for tei := range a.SourceBursts {
		teis = append(teis, int(tei))
	}
	sort.Ints(teis)
	for _, tei := range teis {
		fmt.Printf("  TEI %-3d: %d\n", tei, a.SourceBursts[hpav.TEI(tei)])
	}
}
