package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/device"
	"repro/internal/testbed"
)

// TestPlcdSmoke boots the daemon on a loopback port, performs one
// management-MME probe against a station, and checks it shuts down
// cleanly on SIGTERM. The deeper protocol behaviour is covered by
// internal/device and the top-level CLI pipeline test; this pins the
// binary itself: flag parsing, startup banner, signal handling, exit
// code.
func TestPlcdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := filepath.Join(t.TempDir(), "plcd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-n", "2", "-listen", "127.0.0.1:0", "-seed", "3")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := false
	defer func() {
		if !exited {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Scrape the ephemeral address from the banner and keep draining so
	// the daemon never blocks on stdout.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrc := make(chan string, 1)
	drained := make(chan struct{})
	var tail strings.Builder
	go func() {
		defer close(drained)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			tail.WriteString(line + "\n")
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(30 * time.Second):
		t.Fatal("plcd never printed its address")
	}

	// One probe: fetch the (freshly booted, hence zero) tx counters of
	// station 1 — a full request/response round trip through the UDP
	// framing and MME codec.
	cli, err := device.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	pri, err := config.ParsePriority("CA1")
	if err != nil {
		t.Fatal(err)
	}
	counters, err := cli.FetchLink(testbed.StationAddr(0), testbed.DstAddr, pri)
	if err != nil {
		t.Fatalf("fetch station 1 counters: %v", err)
	}
	if counters.Acked != 0 || counters.Collided != 0 {
		t.Errorf("counters before any run: %+v, want zeros", counters)
	}

	// Clean shutdown: SIGTERM → exit code 0 and the shutdown banner.
	// Wait for the drain goroutine's EOF before cmd.Wait so the final
	// output lines land in tail and the pipe is fully read.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-drained:
	case <-time.After(30 * time.Second):
		t.Fatal("plcd stdout never reached EOF after SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("plcd did not exit cleanly: %v", err)
	}
	exited = true
	if !strings.Contains(tail.String(), "shutting down") {
		t.Errorf("missing shutdown banner in output:\n%s", tail.String())
	}
}
