// Command plcd hosts an emulated HomePlug AV power strip over UDP: N
// saturated stations transmitting to a destination station D, each
// reachable through the vendor management-message interface that the
// measurement tools (ampstat, faifa) speak.
//
// Typical session:
//
//	plcd -n 7 -listen 127.0.0.1:5277 &
//	ampstat -host 127.0.0.1:5277 -op reset -all
//	ampstat -host 127.0.0.1:5277 -op run -duration 240
//	ampstat -host 127.0.0.1:5277 -op collision -all
//
// The daemon prints the station MAC addresses on startup; time only
// advances when a tool sends the run control message, so results are
// fully deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/device"
	"repro/internal/testbed"
)

func main() {
	var (
		n      = flag.Int("n", 2, "number of saturated transmitting stations")
		burst  = flag.Int("burst", 2, "MPDUs per burst (1-4)")
		frame  = flag.Float64("frame", 2050, "per-MPDU payload duration in µs")
		mgmt   = flag.Float64("mgmt", 0, "mean management-MME inter-arrival per station in µs (0 = off)")
		seed   = flag.Uint64("seed", 1, "random seed")
		listen = flag.String("listen", "127.0.0.1:0", "UDP address to listen on")
	)
	flag.Parse()

	tb, err := testbed.New(testbed.Options{
		N: *n, BurstMPDUs: *burst, FrameMicros: *frame,
		MgmtMeanMicros: *mgmt, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "plcd:", err)
		os.Exit(2)
	}

	pc, err := net.ListenPacket("udp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plcd:", err)
		os.Exit(1)
	}
	host := device.NewHost(pc, tb.Network)
	host.Add(tb.Destination)
	for _, d := range tb.Transmitters {
		host.Add(d)
	}

	fmt.Printf("plcd: listening on %s\n", host.Addr())
	fmt.Printf("plcd: destination D at %s (TEI %d)\n", testbed.DstAddr, testbed.DstTEI)
	for i := range tb.Transmitters {
		fmt.Printf("plcd: station %d at %s (TEI %d)\n", i+1, testbed.StationAddr(i), testbed.StationTEI(i))
	}

	errc := make(chan error, 1)
	go func() { errc <- host.Serve() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("plcd: %v, shutting down\n", s)
		host.Close()
		<-errc
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "plcd:", err)
			os.Exit(1)
		}
	}
}
