// Command plcbench regenerates every table and figure of the paper
// (and the extension experiments of DESIGN.md) and renders them as
// markdown or CSV. It is the one-command reproduction harness:
//
//	plcbench                 # everything, paper-scale durations
//	plcbench -quick          # everything, short durations (~seconds)
//	plcbench -exp fig2       # one experiment
//	plcbench -format csv -out results/
//	plcbench -parallel       # fan sweep points across GOMAXPROCS workers
//
// Scenario mode renders a declarative scenario's replication statistics
// as a table instead of a canned experiment:
//
//	plcbench -scenario examples/scenarios/poisson-load.json -reps 10
//
// Campaign mode renders a whole parameter grid as one consolidated
// table, one row per grid point with its converged replication count:
//
//	plcbench -campaign examples/campaigns/saturation-error-grid.json -format json
//
// -compare runs every campaign grid point through both the analytic
// model and a simulator and renders the campaign-wide per-metric
// divergence table — the model-accuracy envelope as one table:
//
//	plcbench -campaign examples/campaigns/model-envelope-load.json -compare
//
// -parallel distributes each experiment's independent sweep points
// (station counts, loads, candidate configurations, …) across
// GOMAXPROCS goroutines. Every point owns its random streams and
// results are collected in input order, so the output is bit-identical
// to a serial run — only the wall-clock time changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/scenario"
)

type runner func(quick bool) (*experiments.Table, error)

var all = []struct {
	id  string
	run runner
}{
	{"table1", func(bool) (*experiments.Table, error) { return experiments.Table1(), nil }},
	{"fig1", func(bool) (*experiments.Table, error) { return experiments.Figure1(3, 12) }},
	{"table2", func(quick bool) (*experiments.Table, error) {
		cfg := experiments.DefaultTable2Config()
		if quick {
			cfg.DurationMicros = 1e7
		}
		return experiments.Table2(cfg)
	}},
	{"fig2", func(quick bool) (*experiments.Table, error) {
		cfg := experiments.DefaultFigure2Config()
		if quick {
			cfg.Tests = 3
			cfg.TestDurationMicros = 1e7
			cfg.SimTimeMicros = 2e7
		}
		_, t, err := experiments.Figure2(cfg)
		return t, err
	}},
	{"throughput", func(quick bool) (*experiments.Table, error) {
		simTime, ns := 1e8, []int{1, 2, 3, 5, 7, 10, 15, 20, 30}
		if quick {
			simTime, ns = 1e7, []int{1, 2, 5, 10}
		}
		return experiments.ThroughputVsN(ns, simTime, 1)
	}},
	{"boost", func(quick bool) (*experiments.Table, error) {
		ns, simTime, topK := []int{2, 5, 10, 15}, 3e7, 5
		if quick {
			ns, simTime, topK = []int{2, 5}, 5e6, 3
		}
		_, t, err := experiments.Boost(ns, simTime, topK, 1)
		return t, err
	}},
	{"sniffer", func(quick bool) (*experiments.Table, error) {
		duration := 240e6
		if quick {
			duration = 1e7
		}
		_, t, err := experiments.Sniffer(3, duration, 100_000, 1)
		return t, err
	}},
	{"fairness", func(quick bool) (*experiments.Table, error) {
		simTime, windows := 2e8, []int{10, 30, 100, 300, 1000}
		if quick {
			simTime, windows = 2e7, []int{10, 100, 1000}
		}
		return experiments.ShortTermFairness(2, windows, simTime, 1)
	}},
	{"delay", func(quick bool) (*experiments.Table, error) {
		duration, ns := 1e8, []int{1, 2, 3, 5, 7, 10}
		if quick {
			duration, ns = 1e7, []int{1, 3, 7}
		}
		return experiments.AccessDelay(ns, duration, 1)
	}},
	{"delay-load", func(quick bool) (*experiments.Table, error) {
		duration, loads := 1e8, []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
		if quick {
			duration, loads = 2e7, []float64{0.1, 0.5, 0.9}
		}
		return experiments.DelayVsLoad(3, loads, duration, 1)
	}},
	{"coexistence", func(quick bool) (*experiments.Table, error) {
		simTime, per := 1e8, 5
		if quick {
			simTime, per = 1e7, 3
		}
		// The aggressive capture case; the polite-boost case is covered
		// by the test suite and EXPERIMENTS.md.
		inf := 1 << 20
		aggressive := config.Params{Name: "aggressive", CW: []int{4, 8, 16, 32}, DC: []int{inf, inf, inf, inf}}
		return experiments.Coexistence(aggressive, per, simTime, 1)
	}},
	{"model-accuracy", func(quick bool) (*experiments.Table, error) {
		simTime, ns := 2e8, []int{2, 3, 4, 5, 7, 10, 15}
		if quick {
			simTime, ns = 2e7, []int{2, 5, 10}
		}
		return experiments.ModelAccuracy(ns, simTime, 1)
	}},
	{"ablation-deferral", func(quick bool) (*experiments.Table, error) {
		simTime, ns := 1e8, []int{2, 5, 10, 15}
		if quick {
			simTime, ns = 1e7, []int{2, 7}
		}
		return experiments.AblationDeferral(ns, simTime, 1)
	}},
	{"ablation-burst", func(quick bool) (*experiments.Table, error) {
		duration := 1e8
		if quick {
			duration = 1e7
		}
		return experiments.AblationBurstSize(3, duration, 1)
	}},
	{"ablation-agreement", func(quick bool) (*experiments.Table, error) {
		simTime, ns := 1e8, []int{1, 2, 4, 7}
		if quick {
			simTime, ns = 1e7, []int{2, 5}
		}
		return experiments.SimulatorAgreement(ns, simTime, 1)
	}},
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id or 'all': "+ids())
		quick    = flag.Bool("quick", false, "short durations for smoke runs")
		format   = flag.String("format", "md", "md | csv | json")
		out      = flag.String("out", "", "output directory (default stdout)")
		parallel = flag.Bool("parallel", false, "fan independent sweep points across GOMAXPROCS goroutines (bit-identical output)")
		scenF    = flag.String("scenario", "", "render a declarative scenario's replication statistics instead of a canned experiment")
		campF    = flag.String("campaign", "", "render a declarative campaign's grid results instead of a canned experiment")
		compare  = flag.Bool("compare", false, "run every -campaign grid point through both the analytic model and a simulator and render the divergence table")
		reps     = flag.Int("reps", 10, "independent-seed replications per scenario point (with -scenario)")
	)
	flag.Parse()
	switch *format {
	case "md", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "plcbench: -format %s: want md, csv or json\n", *format)
		os.Exit(2)
	}
	if *parallel {
		experiments.SetWorkers(0) // 0 = GOMAXPROCS
	}
	if *campF != "" && *scenF != "" {
		fmt.Fprintln(os.Stderr, "plcbench: -scenario and -campaign are mutually exclusive")
		os.Exit(2)
	}

	if *campF != "" {
		// A campaign file owns its replication policy; a -reps that
		// silently did nothing would be worse than an error.
		repsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "reps" {
				repsSet = true
			}
		})
		if repsSet {
			fmt.Fprintln(os.Stderr, "plcbench: -reps does not apply to -campaign (set \"reps\" or min_reps/max_reps in the campaign file)")
			os.Exit(2)
		}
		table := campaignTable
		if *compare {
			table = campaignCompareTable
		}
		t, err := table(*campF, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plcbench:", err)
			os.Exit(1)
		}
		if err := render(t, *format, *out); err != nil {
			fmt.Fprintln(os.Stderr, "plcbench:", err)
			os.Exit(1)
		}
		return
	}
	if *compare {
		fmt.Fprintln(os.Stderr, "plcbench: -compare requires -campaign")
		os.Exit(2)
	}

	if *scenF != "" {
		if *reps < 1 {
			// Fail fast, naming the flag: asking for zero or negative
			// replications is always a harness mistake.
			fmt.Fprintf(os.Stderr, "plcbench: -reps = %d: replications must be ≥ 1\n", *reps)
			os.Exit(2)
		}
		t, err := scenarioTable(*scenF, *reps, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plcbench:", err)
			os.Exit(1)
		}
		if err := render(t, *format, *out); err != nil {
			fmt.Fprintln(os.Stderr, "plcbench:", err)
			os.Exit(1)
		}
		return
	}

	selected := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	ran := 0
	for _, entry := range all {
		if len(selected) > 0 && !selected[entry.id] {
			continue
		}
		t, err := entry.run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "plcbench: %s: %v\n", entry.id, err)
			os.Exit(1)
		}
		if err := render(t, *format, *out); err != nil {
			fmt.Fprintf(os.Stderr, "plcbench: %s: %v\n", entry.id, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "plcbench: no experiment matches -exp %s (known: %s)\n", *exp, ids())
		os.Exit(2)
	}
}

// scenarioTable runs a declarative scenario's replications and renders
// the per-metric summaries as one table (rows ordered point-major, so
// output is bit-identical between serial and -parallel runs).
func scenarioTable(path string, reps int, parallel bool) (*experiments.Table, error) {
	spec, err := scenario.Load(path)
	if err != nil {
		return nil, err
	}
	c, err := scenario.Compile(spec)
	if err != nil {
		return nil, err
	}
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	report, err := scenario.Replications(c, reps, workers)
	if err != nil {
		return nil, err
	}
	t := &experiments.Table{
		ID: "scenario-" + report.Spec.Name,
		// report.Reps, not the requested reps: the model engine
		// collapses deterministic studies to one evaluation per point.
		Title:  fmt.Sprintf("Scenario %s: %d replications per point (engine %s)", report.Spec.Name, report.Reps, report.Spec.Engine),
		Note:   report.Spec.Description,
		Header: []string{"N", "metric", "mean", "± 95% CI", "stddev", "min", "max"},
	}
	for _, p := range report.Points {
		for _, m := range p.Metrics {
			t.AddRow(fmt.Sprint(p.N), m.Name,
				fmt.Sprintf("%.6f", m.Summary.Mean),
				fmt.Sprintf("%.6f", m.Summary.CI95),
				fmt.Sprintf("%.6g", m.Summary.StdDev),
				fmt.Sprintf("%.6f", m.Summary.Min),
				fmt.Sprintf("%.6f", m.Summary.Max))
		}
	}
	return t, nil
}

// campaignTable runs a declarative campaign and renders the grid as one
// consolidated table: one row per grid point, with the point's axis
// coordinate, its (possibly adaptive) replication count, convergence
// status and the headline metrics as mean ± 95% CI.
func campaignTable(path string, parallel bool) (*experiments.Table, error) {
	spec, err := campaign.Load(path)
	if err != nil {
		return nil, err
	}
	c, err := campaign.Compile(spec)
	if err != nil {
		return nil, err
	}
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	report, err := campaign.Run(c, campaign.Opts{Workers: workers})
	if err != nil {
		return nil, err
	}
	s := report.Spec
	repsDesc := fmt.Sprintf("%d replications per point", s.Reps)
	if s.Adaptive() {
		repsDesc = fmt.Sprintf("adaptive %d–%d replications", s.MinReps, s.MaxReps)
	}
	metrics := s.HeadlineMetrics()
	t := &experiments.Table{
		ID:     "campaign-" + s.Name,
		Title:  fmt.Sprintf("Campaign %s: %d points, %s (engine %s)", s.Name, len(report.Points), repsDesc, s.Base.Engine),
		Note:   s.Description,
		Header: []string{},
	}
	for _, a := range s.Axes {
		t.Header = append(t.Header, a.Path)
	}
	t.Header = append(t.Header, "reps", "converged")
	cv := s.Base.CVEnabled()
	if cv {
		// Control-variate campaigns grow a speedup column; plain tables
		// keep the historical header byte for byte.
		t.Header = append(t.Header, "speedup")
	}
	for _, m := range metrics {
		t.Header = append(t.Header, m+" mean", m+" ±95% CI")
	}
	// One shared reduction (campaign.Report.Grid) feeds every campaign
	// table surface, so flags and metric selection cannot drift from
	// the sim1901 text rendering.
	for _, g := range report.Grid() {
		row := append([]string(nil), g.Labels...)
		row = append(row, fmt.Sprint(g.Reps), g.Conv)
		if cv {
			row = append(row, campaign.FormatSpeedup(g.Speedup))
		}
		for _, ms := range g.Metrics {
			switch {
			case ms == nil:
				row = append(row, "-", "-")
			case ms.CV != nil && ms.CV.Applied:
				row = append(row, fmt.Sprintf("%.6f", ms.CV.Mean), fmt.Sprintf("%.6f", ms.CV.CI95))
			default:
				row = append(row, fmt.Sprintf("%.6f", ms.Summary.Mean), fmt.Sprintf("%.6f", ms.Summary.CI95))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// campaignCompareTable runs a declarative campaign through compare
// mode — every grid point through both the analytic model and a
// simulator — and renders the campaign-wide per-metric divergence
// table: mean/max relative error, mean/max absolute error, and the
// worst grid point by name.
func campaignCompareTable(path string, parallel bool) (*experiments.Table, error) {
	spec, err := campaign.Load(path)
	if err != nil {
		return nil, err
	}
	c, err := campaign.Compile(spec)
	if err != nil {
		return nil, err
	}
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
	}
	report, err := campaign.CompareRun(c, campaign.Opts{Workers: workers})
	if err != nil {
		return nil, err
	}
	s := report.Spec
	t := &experiments.Table{
		ID:     "campaign-compare-" + s.Name,
		Title:  fmt.Sprintf("Campaign %s: analytic model vs simulation over %d points, %d sim reps", s.Name, len(report.Points), report.Reps),
		Note:   s.Description,
		Header: []string{"metric", "mean rel", "max rel", "mean abs", "max abs", "worst point"},
	}
	for _, d := range report.Divergence() {
		worst := d.WorstRel
		if worst == "" {
			worst = d.WorstAbs
		}
		t.AddRow(d.Name,
			fmt.Sprintf("%.2f%%", 100*d.MeanRel),
			fmt.Sprintf("%.2f%%", 100*d.MaxRel),
			fmt.Sprintf("%.6f", d.MeanAbs),
			fmt.Sprintf("%.6f", d.MaxAbs),
			worst)
	}
	return t, nil
}

func ids() string {
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.id
	}
	return strings.Join(out, ", ")
}

func render(t *experiments.Table, format, outDir string) error {
	var w io.Writer = os.Stdout
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		ext := ".md"
		switch format {
		case "csv":
			ext = ".csv"
		case "json":
			ext = ".json"
		}
		f, err := os.Create(filepath.Join(outDir, t.ID+ext))
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "csv":
		return t.WriteCSV(w)
	case "json":
		return t.WriteJSON(w)
	}
	return t.WriteMarkdown(w)
}
