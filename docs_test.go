package repro_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/scenario"
)

// TestScenarioExamplesCompile keeps every shipped scenario file honest:
// each must parse, validate and compile. CI additionally runs each
// through `sim1901 -scenario f -validate`; this test catches the same
// drift from plain `go test ./...`.
func TestScenarioExamplesCompile(t *testing.T) {
	paths, err := filepath.Glob("examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("found %d scenario examples, want ≥ 5 regimes", len(paths))
	}
	for _, p := range paths {
		spec, err := scenario.Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if _, err := scenario.Compile(spec); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

// TestCampaignExamplesCompile keeps every shipped campaign file honest:
// each must parse, validate, expand and compile. CI additionally runs
// each through `sim1901 -campaign f -validate`; this test catches the
// same drift from plain `go test ./...`.
func TestCampaignExamplesCompile(t *testing.T) {
	paths, err := filepath.Glob("examples/campaigns/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("found %d campaign examples, want ≥ 3 regimes", len(paths))
	}
	for _, p := range paths {
		spec, err := campaign.Load(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if _, err := campaign.Compile(spec); err != nil {
			t.Errorf("%s: %v", p, err)
		}
	}
}

// TestReproducingCommandsResolve statically checks every command quoted
// in docs/REPRODUCING.md: the referenced cmd/ binary must exist, every
// flag the command passes must be registered in that binary's source,
// and every scenario file it names must be on disk. CI complements
// this with a live `-h` probe of each binary.
func TestReproducingCommandsResolve(t *testing.T) {
	doc, err := os.ReadFile("docs/REPRODUCING.md")
	if err != nil {
		t.Fatal(err)
	}

	cmdSrc := map[string]string{}
	source := func(name string) string {
		if src, ok := cmdSrc[name]; ok {
			return src
		}
		data, err := os.ReadFile(filepath.Join("cmd", name, "main.go"))
		if err != nil {
			t.Errorf("command cmd/%s quoted in docs/REPRODUCING.md does not exist: %v", name, err)
			data = nil
		}
		cmdSrc[name] = string(data)
		return cmdSrc[name]
	}

	// Commands live in backtick spans (table cells, prose) and fenced
	// code blocks; a per-line scan covers both without double-counting.
	chunks := []string{}
	for _, line := range strings.Split(string(doc), "\n") {
		if strings.Contains(line, "./cmd/") {
			chunks = append(chunks, line)
		}
	}
	if len(chunks) == 0 {
		t.Fatal("docs/REPRODUCING.md quotes no ./cmd/ commands; the mapping table is the point of the file")
	}

	cmdRe := regexp.MustCompile(`go run \./cmd/([a-z0-9]+)((?:\s+[^\s|]+)*)`)
	flagRe := regexp.MustCompile(`(^|\s)-([a-z][a-z0-9-]*)`)
	fileRe := regexp.MustCompile(`examples/(scenarios|campaigns)/[^\s|]+\.json`)
	seen := 0
	for _, chunk := range chunks {
		for _, m := range cmdRe.FindAllStringSubmatch(chunk, -1) {
			name, args := m[1], m[2]
			src := source(name)
			if src == "" {
				continue
			}
			seen++
			for _, fm := range flagRe.FindAllStringSubmatch(args, -1) {
				flagName := fm[2]
				if !strings.Contains(src, `"`+flagName+`"`) {
					t.Errorf("docs/REPRODUCING.md: %q passes -%s, but cmd/%s registers no such flag", strings.TrimSpace(m[0]), flagName, name)
				}
			}
			for _, f := range fileRe.FindAllString(args, -1) {
				if _, err := os.Stat(f); err != nil {
					t.Errorf("docs/REPRODUCING.md references missing file %s", f)
				}
			}
		}
	}
	if seen < 15 {
		t.Errorf("resolved only %d commands; the artifact tables alone quote more — extraction regressed", seen)
	}
}
